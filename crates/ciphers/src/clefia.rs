//! Clefia-128 workload model (18-round, 4-branch generalised Feistel network).
//!
//! The structure follows the CLEFIA specification: the state is four 32-bit
//! words processed by a type-2 generalised Feistel network with two distinct
//! F-functions (`F0`, `F1`), 36 round keys, and four whitening keys applied to
//! the second and fourth words at input/output. Each F-function XORs the round
//! key, applies four 8-bit S-box lookups and a 4×4 MDS-style byte matrix over
//! GF(2^8).
//!
//! As with the Camellia model, the S-boxes and the concrete key-schedule
//! constants are derived algorithmically (from the generated AES S-box and a
//! xorshift-based expansion) instead of copying the specification's tables, so
//! the implementation is a **workload-faithful model**, not interoperable with
//! the official test vectors. Clefia is never a CPA target in the paper.

use crate::aes::{gf_mul, AesTables};
use crate::exec::{CipherId, ExecutionTrace, OpKind, RecordingCipher};

const ROUNDS: usize = 18;

/// Clefia-128 workload model.
#[derive(Debug, Clone)]
pub struct Clefia128 {
    s0: [u8; 256],
    s1: [u8; 256],
}

/// 4×4 byte matrix M0 of the diffusion layer (entries from the specification).
const M0: [[u8; 4]; 4] = [
    [0x01, 0x02, 0x04, 0x06],
    [0x02, 0x01, 0x06, 0x04],
    [0x04, 0x06, 0x01, 0x02],
    [0x06, 0x04, 0x02, 0x01],
];

/// 4×4 byte matrix M1 of the diffusion layer (entries from the specification).
const M1: [[u8; 4]; 4] = [
    [0x01, 0x08, 0x02, 0x0A],
    [0x08, 0x01, 0x0A, 0x02],
    [0x02, 0x0A, 0x01, 0x08],
    [0x0A, 0x02, 0x08, 0x01],
];

fn mat_mul(m: &[[u8; 4]; 4], x: [u8; 4]) -> [u8; 4] {
    let mut y = [0u8; 4];
    for (r, row) in m.iter().enumerate() {
        let mut acc = 0u8;
        for (c, &coef) in row.iter().enumerate() {
            acc ^= gf_mul(coef, x[c]);
        }
        y[r] = acc;
    }
    y
}

impl Clefia128 {
    /// Creates a new instance (derives the two S-boxes).
    pub fn new() -> Self {
        let base = AesTables::generate();
        let mut s0 = [0u8; 256];
        let mut s1 = [0u8; 256];
        for x in 0..256usize {
            // S1 of CLEFIA is GF(2^8)-inversion-based like AES; use the AES
            // S-box directly. S0 is a different 8-bit permutation; model it as
            // the inverse AES S-box composed with a byte rotation so that the
            // two boxes are unrelated permutations, as in the specification.
            s1[x] = base.sbox[x];
            s0[x] = base.inv_sbox[x].rotate_left(3) ^ 0x5C;
        }
        Self { s0, s1 }
    }

    fn f0(&self, rk: u32, x: u32, mut rec: Option<&mut ExecutionTrace>) -> u32 {
        let t = rk ^ x;
        let b = t.to_be_bytes();
        let s = [
            self.s0[b[0] as usize],
            self.s1[b[1] as usize],
            self.s0[b[2] as usize],
            self.s1[b[3] as usize],
        ];
        if let Some(rec) = rec.as_deref_mut() {
            for &v in s.iter() {
                rec.byte(OpKind::TableLookup, v);
            }
        }
        let y = mat_mul(&M0, s);
        if let Some(rec) = rec {
            for &v in y.iter() {
                rec.byte(OpKind::GfMul, v);
            }
        }
        u32::from_be_bytes(y)
    }

    fn f1(&self, rk: u32, x: u32, mut rec: Option<&mut ExecutionTrace>) -> u32 {
        let t = rk ^ x;
        let b = t.to_be_bytes();
        let s = [
            self.s1[b[0] as usize],
            self.s0[b[1] as usize],
            self.s1[b[2] as usize],
            self.s0[b[3] as usize],
        ];
        if let Some(rec) = rec.as_deref_mut() {
            for &v in s.iter() {
                rec.byte(OpKind::TableLookup, v);
            }
        }
        let y = mat_mul(&M1, s);
        if let Some(rec) = rec {
            for &v in y.iter() {
                rec.byte(OpKind::GfMul, v);
            }
        }
        u32::from_be_bytes(y)
    }

    /// Key schedule: expands the 128-bit key into 4 whitening keys and 36
    /// round keys using a deterministic xorshift-based expansion seeded by the
    /// key words (stand-in for the DoubleSwap schedule of the specification).
    fn schedule(key: &[u8; 16]) -> ([u32; 4], [u32; 2 * ROUNDS]) {
        let k: [u32; 4] = [
            u32::from_be_bytes(key[0..4].try_into().expect("4 bytes")),
            u32::from_be_bytes(key[4..8].try_into().expect("4 bytes")),
            u32::from_be_bytes(key[8..12].try_into().expect("4 bytes")),
            u32::from_be_bytes(key[12..16].try_into().expect("4 bytes")),
        ];
        let whitening = [k[0], k[1], k[2], k[3]];
        let mut state = ((k[0] as u64) << 32 | k[1] as u64)
            ^ ((k[2] as u64) << 32 | k[3] as u64).rotate_left(17)
            ^ 0x243F_6A88_85A3_08D3;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut round_keys = [0u32; 2 * ROUNDS];
        for (i, rk) in round_keys.iter_mut().enumerate() {
            let mix = next();
            *rk = (mix >> 16) as u32 ^ k[i % 4].rotate_left((7 * i as u32) % 32);
        }
        (whitening, round_keys)
    }

    fn encrypt_inner(
        &self,
        key: &[u8],
        pt: &[u8],
        mut rec: Option<&mut ExecutionTrace>,
    ) -> Vec<u8> {
        let key: [u8; 16] = key[..16].try_into().expect("16-byte key");
        let (wk, rk) = Self::schedule(&key);
        let mut p = [
            u32::from_be_bytes(pt[0..4].try_into().expect("4 bytes")),
            u32::from_be_bytes(pt[4..8].try_into().expect("4 bytes")),
            u32::from_be_bytes(pt[8..12].try_into().expect("4 bytes")),
            u32::from_be_bytes(pt[12..16].try_into().expect("4 bytes")),
        ];
        if let Some(rec) = rec.as_deref_mut() {
            for &b in pt.iter().take(16) {
                rec.byte(OpKind::Load, b);
            }
        }
        // Input whitening on words 1 and 3.
        p[1] ^= wk[0];
        p[3] ^= wk[1];
        for r in 0..ROUNDS {
            let t0 = self.f0(rk[2 * r], p[0], rec.as_deref_mut());
            let t1 = self.f1(rk[2 * r + 1], p[2], rec.as_deref_mut());
            let new = [p[1] ^ t0, p[2], p[3] ^ t1, p[0]];
            p = new;
            if let Some(rec) = rec.as_deref_mut() {
                rec.word(OpKind::Xor, p[0]);
                rec.word(OpKind::Xor, p[2]);
            }
        }
        // Undo the last rotation (the specification keeps the final branch
        // order), then output whitening on words 1 and 3.
        p = [p[3], p[0], p[1], p[2]];
        p[1] ^= wk[2];
        p[3] ^= wk[3];
        let mut ct = Vec::with_capacity(16);
        for word in p {
            ct.extend_from_slice(&word.to_be_bytes());
        }
        if let Some(rec) = rec {
            for &b in ct.iter() {
                rec.byte(OpKind::Store, b);
            }
        }
        ct
    }

    fn decrypt_inner(&self, key: &[u8], ct: &[u8]) -> Vec<u8> {
        let key: [u8; 16] = key[..16].try_into().expect("16-byte key");
        let (wk, rk) = Self::schedule(&key);
        let mut p = [
            u32::from_be_bytes(ct[0..4].try_into().expect("4 bytes")),
            u32::from_be_bytes(ct[4..8].try_into().expect("4 bytes")),
            u32::from_be_bytes(ct[8..12].try_into().expect("4 bytes")),
            u32::from_be_bytes(ct[12..16].try_into().expect("4 bytes")),
        ];
        p[1] ^= wk[2];
        p[3] ^= wk[3];
        // Redo the final rotation that encryption undid.
        p = [p[1], p[2], p[3], p[0]];
        for r in (0..ROUNDS).rev() {
            // Invert: new = [p1 ^ F0(p0), p2, p3 ^ F1(p2), p0]
            let old0 = p[3];
            let old2 = p[1];
            let t0 = self.f0(rk[2 * r], old0, None);
            let t1 = self.f1(rk[2 * r + 1], old2, None);
            let old1 = p[0] ^ t0;
            let old3 = p[2] ^ t1;
            p = [old0, old1, old2, old3];
        }
        p[1] ^= wk[0];
        p[3] ^= wk[1];
        let mut out = Vec::with_capacity(16);
        for word in p {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

impl Default for Clefia128 {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordingCipher for Clefia128 {
    fn id(&self) -> CipherId {
        CipherId::Clefia128
    }

    fn encrypt(&self, key: &[u8], plaintext: &[u8]) -> Vec<u8> {
        self.encrypt_inner(key, plaintext, None)
    }

    fn decrypt(&self, key: &[u8], ciphertext: &[u8]) -> Vec<u8> {
        self.decrypt_inner(key, ciphertext)
    }

    fn encrypt_recorded(
        &self,
        key: &[u8],
        plaintext: &[u8],
        trace: &mut ExecutionTrace,
    ) -> Vec<u8> {
        self.encrypt_inner(key, plaintext, Some(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_many_inputs() {
        let c = Clefia128::new();
        for i in 0..16u8 {
            let mut key = [0u8; 16];
            let mut pt = [0u8; 16];
            for j in 0..16 {
                key[j] = i.wrapping_mul(29).wrapping_add(j as u8);
                pt[j] = i.wrapping_mul(53).wrapping_add((3 * j) as u8);
            }
            let ct = c.encrypt(&key, &pt);
            assert_eq!(c.decrypt(&key, &ct), pt.to_vec());
            assert_ne!(ct, pt.to_vec());
        }
    }

    #[test]
    fn sboxes_are_permutations() {
        let c = Clefia128::new();
        for sbox in [&c.s0, &c.s1] {
            let mut seen = [false; 256];
            for &v in sbox.iter() {
                assert!(!seen[v as usize], "duplicate S-box entry {v:#x}");
                seen[v as usize] = true;
            }
        }
    }

    #[test]
    fn matrix_multiplication_identity_component() {
        // M0 row 0 applied to a unit vector picks the matching coefficient.
        assert_eq!(mat_mul(&M0, [1, 0, 0, 0]), [0x01, 0x02, 0x04, 0x06]);
        assert_eq!(mat_mul(&M1, [0, 1, 0, 0]), [0x08, 0x01, 0x0A, 0x02]);
    }

    #[test]
    fn avalanche() {
        let c = Clefia128::new();
        let key = [0x77u8; 16];
        let pt1 = [0u8; 16];
        let mut pt2 = pt1;
        pt2[7] ^= 0x10;
        let c1 = c.encrypt(&key, &pt1);
        let c2 = c.encrypt(&key, &pt2);
        let diff_bits: u32 = c1.iter().zip(c2.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert!(diff_bits > 30 && diff_bits < 100, "diff_bits = {diff_bits}");
    }

    #[test]
    fn recorded_op_profile() {
        let c = Clefia128::new();
        let mut rec = ExecutionTrace::new();
        c.encrypt_recorded(&[1u8; 16], &[2u8; 16], &mut rec);
        // 18 rounds x 2 F-functions x 4 S-box lookups.
        assert_eq!(rec.count_kind(OpKind::TableLookup), 18 * 8);
        assert_eq!(rec.count_kind(OpKind::GfMul), 18 * 8);
        assert_eq!(rec.count_kind(OpKind::Load), 16);
        assert_eq!(rec.count_kind(OpKind::Store), 16);
    }

    #[test]
    fn key_sensitivity() {
        let c = Clefia128::new();
        let pt = [0xABu8; 16];
        let mut k1 = [0u8; 16];
        let mut k2 = [0u8; 16];
        k1[0] = 1;
        k2[0] = 2;
        assert_ne!(c.encrypt(&k1, &pt), c.encrypt(&k2, &pt));
    }
}
