//! FIPS-197 AES-128, with micro-operation recording.
//!
//! The S-box is generated algorithmically (multiplicative inverse in
//! GF(2^8) modulo x^8 + x^4 + x^3 + x + 1, followed by the affine
//! transformation) rather than being embedded as a table of magic numbers;
//! the result is verified against the FIPS-197 test vectors in
//! [`crate::testvectors`].
//!
//! The implementation is a straightforward byte-oriented software AES —
//! the same style as the constant-time OpenSSL software fallback used by the
//! paper — which is exactly the kind of code whose S-box output leaks the
//! Hamming weight exploited by the CPA attack of Table II.

use crate::exec::{CipherId, ExecutionTrace, OpKind, RecordingCipher};

/// Multiplies two elements of GF(2^8) modulo the AES polynomial 0x11B.
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8) (0 maps to 0), computed by exponentiation
/// to the 254th power (Fermat), avoiding table lookups.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 is the multiplicative inverse (square-and-multiply, exponent 0b11111110).
    let mut result = 1u8;
    for bit in (0..8).rev() {
        result = gf_mul(result, result);
        if (254 >> bit) & 1 == 1 {
            result = gf_mul(result, a);
        }
    }
    result
}

/// Computes the AES S-box entry for `x`: affine transform of the GF(2^8) inverse.
fn sbox_entry(x: u8) -> u8 {
    let inv = gf_inv(x);
    let mut out = 0u8;
    for i in 0..8 {
        let bit = ((inv >> i)
            ^ (inv >> ((i + 4) % 8))
            ^ (inv >> ((i + 5) % 8))
            ^ (inv >> ((i + 6) % 8))
            ^ (inv >> ((i + 7) % 8))
            ^ (0x63 >> i))
            & 1;
        out |= bit << i;
    }
    out
}

/// The AES forward and inverse S-boxes, generated once at construction time.
#[derive(Debug, Clone)]
pub struct AesTables {
    /// Forward S-box (SubBytes).
    pub sbox: [u8; 256],
    /// Inverse S-box (InvSubBytes).
    pub inv_sbox: [u8; 256],
}

impl AesTables {
    /// Generates the S-box and inverse S-box.
    pub fn generate() -> Self {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for x in 0..=255u8 {
            let s = sbox_entry(x);
            sbox[x as usize] = s;
            inv_sbox[s as usize] = x;
        }
        Self { sbox, inv_sbox }
    }
}

impl Default for AesTables {
    fn default() -> Self {
        Self::generate()
    }
}

/// Returns the AES S-box output for a byte (convenience for the CPA attack's
/// leakage model, which targets `SBOX[pt ^ key]`).
pub fn sbox(x: u8) -> u8 {
    // A thread-local cache would be overkill; generating one entry is cheap
    // enough for the attack hot path because gf_inv is ~16 gf_muls.
    sbox_entry(x)
}

/// Expands a 16-byte key into the 11 AES-128 round keys (176 bytes).
pub fn key_expansion(key: &[u8; 16], tables: &AesTables) -> [[u8; 16]; 11] {
    let mut w = [[0u8; 4]; 44];
    for i in 0..4 {
        w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
    }
    let mut rcon = 1u8;
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for b in temp.iter_mut() {
                *b = tables.sbox[*b as usize];
            }
            temp[0] ^= rcon;
            rcon = gf_mul(rcon, 2);
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ temp[j];
        }
    }
    let mut round_keys = [[0u8; 16]; 11];
    for r in 0..11 {
        for c in 0..4 {
            for b in 0..4 {
                round_keys[r][4 * c + b] = w[4 * r + c][b];
            }
        }
    }
    round_keys
}

/// FIPS-197 AES-128 implementation with operation recording.
#[derive(Debug, Clone)]
pub struct Aes128 {
    tables: AesTables,
}

impl Aes128 {
    /// Creates a new AES-128 instance (generates the S-box tables).
    pub fn new() -> Self {
        Self { tables: AesTables::generate() }
    }

    /// Access to the generated S-box tables.
    pub fn tables(&self) -> &AesTables {
        &self.tables
    }

    fn sub_bytes(&self, state: &mut [u8; 16], rec: Option<&mut ExecutionTrace>) {
        if let Some(rec) = rec {
            for b in state.iter_mut() {
                *b = self.tables.sbox[*b as usize];
                rec.byte(OpKind::TableLookup, *b);
            }
        } else {
            for b in state.iter_mut() {
                *b = self.tables.sbox[*b as usize];
            }
        }
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.tables.inv_sbox[*b as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16], mut rec: Option<&mut ExecutionTrace>) {
        // State is column-major: state[4*c + r].
        let copy = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = copy[4 * ((c + r) % 4) + r];
                if let Some(rec) = rec.as_deref_mut() {
                    rec.byte(OpKind::Shift, state[4 * c + r]);
                }
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let copy = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = copy[4 * ((c + 4 - r) % 4) + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16], mut rec: Option<&mut ExecutionTrace>) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            let out = [
                gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3],
                col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3],
                col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3),
                gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2),
            ];
            for r in 0..4 {
                state[4 * c + r] = out[r];
                if let Some(rec) = rec.as_deref_mut() {
                    rec.byte(OpKind::GfMul, out[r]);
                }
            }
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            let out = [
                gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9),
                gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13),
                gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11),
                gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14),
            ];
            for r in 0..4 {
                state[4 * c + r] = out[r];
            }
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16], mut rec: Option<&mut ExecutionTrace>) {
        for i in 0..16 {
            state[i] ^= rk[i];
            if let Some(rec) = rec.as_deref_mut() {
                rec.byte(OpKind::Xor, state[i]);
            }
        }
    }

    fn encrypt_block(
        &self,
        key: &[u8; 16],
        pt: &[u8; 16],
        mut rec: Option<&mut ExecutionTrace>,
    ) -> [u8; 16] {
        let round_keys = key_expansion(key, &self.tables);
        let mut state = *pt;
        if let Some(rec) = rec.as_deref_mut() {
            for &b in pt.iter() {
                rec.byte(OpKind::Load, b);
            }
        }
        Self::add_round_key(&mut state, &round_keys[0], rec.as_deref_mut());
        for round in 1..10 {
            self.sub_bytes(&mut state, rec.as_deref_mut());
            Self::shift_rows(&mut state, rec.as_deref_mut());
            Self::mix_columns(&mut state, rec.as_deref_mut());
            Self::add_round_key(&mut state, &round_keys[round], rec.as_deref_mut());
        }
        self.sub_bytes(&mut state, rec.as_deref_mut());
        Self::shift_rows(&mut state, rec.as_deref_mut());
        Self::add_round_key(&mut state, &round_keys[10], rec.as_deref_mut());
        if let Some(rec) = rec {
            for &b in state.iter() {
                rec.byte(OpKind::Store, b);
            }
        }
        state
    }

    fn decrypt_block(&self, key: &[u8; 16], ct: &[u8; 16]) -> [u8; 16] {
        let round_keys = key_expansion(key, &self.tables);
        let mut state = *ct;
        Self::add_round_key(&mut state, &round_keys[10], None);
        for round in (1..10).rev() {
            Self::inv_shift_rows(&mut state);
            self.inv_sub_bytes(&mut state);
            Self::add_round_key(&mut state, &round_keys[round], None);
            Self::inv_mix_columns(&mut state);
        }
        Self::inv_shift_rows(&mut state);
        self.inv_sub_bytes(&mut state);
        Self::add_round_key(&mut state, &round_keys[0], None);
        state
    }
}

impl Default for Aes128 {
    fn default() -> Self {
        Self::new()
    }
}

fn to_block(data: &[u8]) -> [u8; 16] {
    let mut block = [0u8; 16];
    block.copy_from_slice(&data[..16]);
    block
}

impl RecordingCipher for Aes128 {
    fn id(&self) -> CipherId {
        CipherId::Aes128
    }

    fn encrypt(&self, key: &[u8], plaintext: &[u8]) -> Vec<u8> {
        self.encrypt_block(&to_block(key), &to_block(plaintext), None).to_vec()
    }

    fn decrypt(&self, key: &[u8], ciphertext: &[u8]) -> Vec<u8> {
        self.decrypt_block(&to_block(key), &to_block(ciphertext)).to_vec()
    }

    fn encrypt_recorded(
        &self,
        key: &[u8],
        plaintext: &[u8],
        trace: &mut ExecutionTrace,
    ) -> Vec<u8> {
        self.encrypt_block(&to_block(key), &to_block(plaintext), Some(trace)).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testvectors;

    #[test]
    fn sbox_known_entries() {
        // Spot-check a few well-known S-box entries from FIPS-197.
        assert_eq!(sbox(0x00), 0x63);
        assert_eq!(sbox(0x01), 0x7C);
        assert_eq!(sbox(0x53), 0xED);
        assert_eq!(sbox(0xFF), 0x16);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let t = AesTables::generate();
        let mut seen = [false; 256];
        for &s in t.sbox.iter() {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
        for (x, &s) in t.sbox.iter().enumerate() {
            assert_eq!(t.inv_sbox[s as usize], x as u8);
        }
    }

    #[test]
    fn gf_mul_properties() {
        assert_eq!(gf_mul(0x57, 0x83), 0xC1); // FIPS-197 example
        assert_eq!(gf_mul(0x57, 0x13), 0xFE); // FIPS-197 example
        for a in [0u8, 1, 2, 0x53, 0xCA, 0xFF] {
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
        }
    }

    #[test]
    fn gf_inverse_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse failed for {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let aes = Aes128::new();
        let v = testvectors::AES128_VECTORS[0];
        let ct = aes.encrypt(&v.key, &v.plaintext);
        assert_eq!(ct, v.ciphertext.to_vec());
        let pt = aes.decrypt(&v.key, &ct);
        assert_eq!(pt, v.plaintext.to_vec());
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let aes = Aes128::new();
        let v = testvectors::AES128_VECTORS[1];
        let ct = aes.encrypt(&v.key, &v.plaintext);
        assert_eq!(ct, v.ciphertext.to_vec());
    }

    #[test]
    fn key_expansion_first_round_key_is_key() {
        let tables = AesTables::generate();
        let key = [
            0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF,
            0x4F, 0x3C,
        ];
        let rks = key_expansion(&key, &tables);
        assert_eq!(rks[0], key);
        // FIPS-197 A.1: w[4] = a0fafe17 -> first 4 bytes of round key 1.
        assert_eq!(&rks[1][..4], &[0xA0, 0xFA, 0xFE, 0x17]);
        // Last round key from FIPS-197 A.1: d014f9a8 c9ee2589 e13f0cc8 b6630ca6
        assert_eq!(
            rks[10],
            [
                0xD0, 0x14, 0xF9, 0xA8, 0xC9, 0xEE, 0x25, 0x89, 0xE1, 0x3F, 0x0C, 0xC8, 0xB6, 0x63,
                0x0C, 0xA6
            ]
        );
    }

    #[test]
    fn recorded_trace_has_expected_op_mix() {
        let aes = Aes128::new();
        let mut rec = ExecutionTrace::new();
        aes.encrypt_recorded(&[0u8; 16], &[0u8; 16], &mut rec);
        // 16 sbox lookups per round, 10 rounds.
        assert_eq!(rec.count_kind(OpKind::TableLookup), 160);
        // 16 xors per AddRoundKey, 11 round keys.
        assert_eq!(rec.count_kind(OpKind::Xor), 176);
        // MixColumns in 9 rounds, 16 outputs each.
        assert_eq!(rec.count_kind(OpKind::GfMul), 144);
        assert_eq!(rec.count_kind(OpKind::Load), 16);
        assert_eq!(rec.count_kind(OpKind::Store), 16);
    }

    #[test]
    fn different_plaintexts_give_different_ciphertexts() {
        let aes = Aes128::new();
        let key = [7u8; 16];
        let c1 = aes.encrypt(&key, &[0u8; 16]);
        let mut pt2 = [0u8; 16];
        pt2[15] = 1;
        let c2 = aes.encrypt(&key, &pt2);
        assert_ne!(c1, c2);
    }
}
