//! First-order boolean-masked AES-128 (the "AES mask" cipher of Table I).
//!
//! The paper's protected target is a masked Tiny-AES-128. This module
//! implements a classic first-order boolean masking scheme:
//!
//! * every state byte is split into `masked = value ^ mask` with a fresh
//!   per-byte random mask;
//! * SubBytes uses a *remasked S-box table* `S'(x ^ m_in) = S(x) ^ m_out`
//!   recomputed for every encryption (the table recomputation itself is
//!   recorded, which is why masked-AES traces are longer and far more
//!   variable than plain AES traces, matching the observation in
//!   Section IV-B of the paper);
//! * the linear layers (ShiftRows, MixColumns, AddRoundKey) are applied to
//!   the masked state and to the mask state in parallel;
//! * the mask is removed only when the ciphertext is written out.
//!
//! The ciphertext is bit-exact AES-128 (verified against the unmasked
//! implementation and the FIPS-197 vectors), but the recorded intermediate
//! values are the *masked* ones, so a first-order CPA on the recorded trace
//! does not see the true SubBytes output.

use crate::aes::{gf_mul, key_expansion, AesTables};
use crate::exec::{CipherId, ExecutionTrace, OpKind, RecordingCipher};

/// Small deterministic xorshift generator used to draw masks.
///
/// A cryptographically strong RNG is unnecessary here: the masks only need to
/// be unpredictable *per trace* for the leakage simulation, and determinism
/// (given the seed) keeps the experiments reproducible.
#[derive(Debug, Clone)]
struct MaskRng {
    state: u64,
}

impl MaskRng {
    fn new(seed: u64) -> Self {
        Self { state: seed | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    fn next_byte(&mut self) -> u8 {
        (self.next_u64() >> 24) as u8
    }
}

/// First-order boolean-masked AES-128.
#[derive(Debug)]
pub struct MaskedAes128 {
    tables: AesTables,
    seed: u64,
    /// Per-instance encryption counter: every execution draws fresh masks even
    /// for identical inputs, as the real masked implementation does.
    executions: std::sync::atomic::AtomicU64,
}

impl Clone for MaskedAes128 {
    fn clone(&self) -> Self {
        Self {
            tables: self.tables.clone(),
            seed: self.seed,
            executions: std::sync::atomic::AtomicU64::new(
                self.executions.load(std::sync::atomic::Ordering::Relaxed),
            ),
        }
    }
}

impl MaskedAes128 {
    /// Creates a masked AES instance. `seed` initialises the mask generator;
    /// every encryption advances an internal counter so that distinct
    /// encryptions use distinct masks while remaining reproducible.
    pub fn new(seed: u64) -> Self {
        Self {
            tables: AesTables::generate(),
            seed,
            executions: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        let copy = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = copy[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    }

    /// Core masked encryption. When `rec` is `Some`, every touched *masked*
    /// value is recorded (never the unmasked secret intermediates).
    fn encrypt_masked(
        &self,
        key: &[u8; 16],
        pt: &[u8; 16],
        mut rec: Option<&mut ExecutionTrace>,
        nonce: u64,
    ) -> [u8; 16] {
        let round_keys = key_expansion(key, &self.tables);
        let mut rng = MaskRng::new(self.seed ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // Draw the S-box input/output masks and recompute the masked table.
        let m_in = rng.next_byte();
        let m_out = rng.next_byte();
        if let Some(rec) = rec.as_deref_mut() {
            rec.byte(OpKind::Rng, m_in);
            rec.byte(OpKind::Rng, m_out);
        }
        let mut masked_sbox = [0u8; 256];
        for x in 0..=255u8 {
            let entry = self.tables.sbox[(x ^ m_in) as usize] ^ m_out;
            masked_sbox[x as usize] = entry;
            if let Some(rec) = rec.as_deref_mut() {
                rec.byte(OpKind::Store, entry);
            }
        }

        // Split the state into masked value + mask.
        let mut masks = [0u8; 16];
        let mut masked = [0u8; 16];
        for i in 0..16 {
            masks[i] = rng.next_byte();
            masked[i] = pt[i] ^ masks[i];
            if let Some(rec) = rec.as_deref_mut() {
                rec.byte(OpKind::Rng, masks[i]);
                rec.byte(OpKind::Load, masked[i]);
            }
        }

        let add_round_key =
            |masked: &mut [u8; 16], rk: &[u8; 16], rec: &mut Option<&mut ExecutionTrace>| {
                for i in 0..16 {
                    masked[i] ^= rk[i];
                    if let Some(rec) = rec.as_deref_mut() {
                        rec.byte(OpKind::Xor, masked[i]);
                    }
                }
            };

        add_round_key(&mut masked, &round_keys[0], &mut rec);

        for round in 1..=10 {
            // SubBytes: remask every byte to the table's input mask, look up,
            // then the byte carries the table's output mask.
            for i in 0..16 {
                masked[i] ^= masks[i] ^ m_in;
                if let Some(rec) = rec.as_deref_mut() {
                    rec.byte(OpKind::Xor, masked[i]);
                }
                masked[i] = masked_sbox[masked[i] as usize];
                masks[i] = m_out;
                if let Some(rec) = rec.as_deref_mut() {
                    rec.byte(OpKind::TableLookup, masked[i]);
                }
            }
            // Refresh to fresh per-byte masks so no two bytes share a mask.
            for i in 0..16 {
                let fresh = rng.next_byte();
                masked[i] ^= masks[i] ^ fresh;
                masks[i] = fresh;
                if let Some(rec) = rec.as_deref_mut() {
                    rec.byte(OpKind::Rng, fresh);
                    rec.byte(OpKind::Xor, masked[i]);
                }
            }

            Self::shift_rows(&mut masked);
            Self::shift_rows(&mut masks);
            if round < 10 {
                Self::mix_columns(&mut masked);
                Self::mix_columns(&mut masks);
                if let Some(rec) = rec.as_deref_mut() {
                    for i in 0..16 {
                        rec.byte(OpKind::GfMul, masked[i]);
                    }
                }
            }
            add_round_key(&mut masked, &round_keys[round], &mut rec);
        }

        // Unmask the ciphertext.
        let mut ct = [0u8; 16];
        for i in 0..16 {
            ct[i] = masked[i] ^ masks[i];
            if let Some(rec) = rec.as_deref_mut() {
                rec.byte(OpKind::Store, ct[i]);
            }
        }
        ct
    }

    fn nonce_from(&self, pt: &[u8; 16], key: &[u8; 16]) -> u64 {
        // Mix the inputs with a per-instance execution counter: masks stay
        // reproducible given the seed, but every execution — even with
        // identical inputs — draws fresh masks, as real masking does.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in pt.iter().chain(key.iter()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let count = self.executions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        h ^ count.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

impl RecordingCipher for MaskedAes128 {
    fn id(&self) -> CipherId {
        CipherId::MaskedAes128
    }

    fn encrypt(&self, key: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let key: [u8; 16] = key[..16].try_into().expect("16-byte key");
        let pt: [u8; 16] = plaintext[..16].try_into().expect("16-byte block");
        let nonce = self.nonce_from(&pt, &key);
        self.encrypt_masked(&key, &pt, None, nonce).to_vec()
    }

    fn decrypt(&self, key: &[u8], ciphertext: &[u8]) -> Vec<u8> {
        // Masked decryption is not protected in the paper's target either;
        // decryption simply delegates to the unmasked reference.
        crate::aes::Aes128::new().decrypt(key, ciphertext)
    }

    fn encrypt_recorded(
        &self,
        key: &[u8],
        plaintext: &[u8],
        trace: &mut ExecutionTrace,
    ) -> Vec<u8> {
        let key: [u8; 16] = key[..16].try_into().expect("16-byte key");
        let pt: [u8; 16] = plaintext[..16].try_into().expect("16-byte block");
        let nonce = self.nonce_from(&pt, &key);
        self.encrypt_masked(&key, &pt, Some(trace), nonce).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;
    use crate::testvectors;

    #[test]
    fn masked_matches_fips_vectors() {
        let masked = MaskedAes128::new(42);
        for v in testvectors::AES128_VECTORS.iter() {
            let ct = masked.encrypt(&v.key, &v.plaintext);
            assert_eq!(ct, v.ciphertext.to_vec());
        }
    }

    #[test]
    fn masked_matches_unmasked_on_random_inputs() {
        let masked = MaskedAes128::new(7);
        let plain = Aes128::new();
        let mut key = [0u8; 16];
        let mut pt = [0u8; 16];
        for trial in 0..32u8 {
            for i in 0..16 {
                key[i] = trial.wrapping_mul(31).wrapping_add(i as u8);
                pt[i] = trial.wrapping_mul(17).wrapping_add(7 * i as u8);
            }
            assert_eq!(masked.encrypt(&key, &pt), plain.encrypt(&key, &pt));
        }
    }

    #[test]
    fn different_seeds_produce_same_ciphertext_different_trace() {
        let a = MaskedAes128::new(1);
        let b = MaskedAes128::new(2);
        let key = [3u8; 16];
        let pt = [9u8; 16];
        let mut ta = ExecutionTrace::new();
        let mut tb = ExecutionTrace::new();
        let ca = a.encrypt_recorded(&key, &pt, &mut ta);
        let cb = b.encrypt_recorded(&key, &pt, &mut tb);
        assert_eq!(ca, cb);
        // Same op count (control flow is data-independent) ...
        assert_eq!(ta.len(), tb.len());
        // ... but different recorded values because masks differ.
        assert_ne!(ta.ops(), tb.ops());
    }

    #[test]
    fn recorded_trace_contains_rng_and_table_recompute() {
        let masked = MaskedAes128::new(99);
        let mut rec = ExecutionTrace::new();
        masked.encrypt_recorded(&[0u8; 16], &[0u8; 16], &mut rec);
        assert!(rec.count_kind(OpKind::Rng) >= 16 * 10);
        // Masked table recomputation stores 256 entries + 16 ciphertext bytes.
        assert_eq!(rec.count_kind(OpKind::Store), 256 + 16);
        // Masked AES executes more operations than plain AES.
        let mut plain_rec = ExecutionTrace::new();
        Aes128::new().encrypt_recorded(&[0u8; 16], &[0u8; 16], &mut plain_rec);
        assert!(rec.len() > plain_rec.len());
    }

    #[test]
    fn recorded_values_are_masked() {
        // The true first-round SubBytes outputs must not appear in order in
        // the recorded table lookups (they are masked with m_out).
        let key = [0u8; 16];
        let pt = [0u8; 16];
        let plain = Aes128::new();
        let tables = plain.tables();
        let true_first_sbox = tables.sbox[key[0] as usize ^ pt[0] as usize];
        let masked = MaskedAes128::new(1234);
        let mut rec = ExecutionTrace::new();
        masked.encrypt_recorded(&key, &pt, &mut rec);
        let lookups: Vec<u8> = rec
            .ops()
            .iter()
            .filter(|o| o.kind == OpKind::TableLookup)
            .map(|o| o.value as u8)
            .collect();
        // First recorded lookup of the first round should differ from the
        // unmasked SubBytes output (probability of accidental equality is
        // 1/256; the fixed seed makes this deterministic).
        assert_ne!(lookups[0], true_first_sbox);
    }
}
