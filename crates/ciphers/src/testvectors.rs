//! Known-answer test vectors.
//!
//! Only AES-128 carries official vectors (FIPS-197 appendix B and appendix C.1):
//! AES is the cipher whose intermediates must be bit-exact because the CPA
//! attack of Table II targets its SubBytes output. The other ciphers in this
//! crate are structure-faithful workload models (see the crate-level
//! documentation) and are validated through round-trip, determinism, avalanche
//! and operation-profile tests instead.

/// A single-block known-answer vector.
#[derive(Debug, Clone, Copy)]
pub struct BlockVector {
    /// 16-byte key.
    pub key: [u8; 16],
    /// 16-byte plaintext.
    pub plaintext: [u8; 16],
    /// Expected 16-byte ciphertext.
    pub ciphertext: [u8; 16],
}

/// FIPS-197 AES-128 vectors: appendix B, then appendix C.1.
pub const AES128_VECTORS: [BlockVector; 2] = [
    BlockVector {
        key: [
            0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF,
            0x4F, 0x3C,
        ],
        plaintext: [
            0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D, 0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37,
            0x07, 0x34,
        ],
        ciphertext: [
            0x39, 0x25, 0x84, 0x1D, 0x02, 0xDC, 0x09, 0xFB, 0xDC, 0x11, 0x85, 0x97, 0x19, 0x6A,
            0x0B, 0x32,
        ],
    },
    BlockVector {
        key: [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D,
            0x0E, 0x0F,
        ],
        plaintext: [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD,
            0xEE, 0xFF,
        ],
        ciphertext: [
            0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4,
            0xC5, 0x5A,
        ],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_are_well_formed() {
        assert_eq!(AES128_VECTORS.len(), 2);
        // The two vectors must be distinct.
        assert_ne!(AES128_VECTORS[0].key, AES128_VECTORS[1].key);
        assert_ne!(AES128_VECTORS[0].ciphertext, AES128_VECTORS[1].ciphertext);
    }
}
