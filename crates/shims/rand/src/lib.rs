//! Offline API-surface stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no network access, so this crate re-implements
//! the small slice of the `rand 0.8` API the workspace actually uses:
//!
//! * [`rngs::StdRng`] — here a [xoshiro256++] generator seeded through
//!   SplitMix64 (the upstream reference seeding procedure);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over half-open and inclusive ranges of the common
//!   integer and float types;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are deterministic for a fixed seed but intentionally *not*
//! bit-compatible with upstream `rand`: the workspace only relies on
//! determinism, never on specific values.
//!
//! [xoshiro256++]: https://prng.di.unimi.it/

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, the subset of `rand::distributions` the
/// workspace needs.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        u64_to_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

#[inline]
fn u64_to_unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro reference implementation.
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = super::splitmix64(&mut state);
            }
            // Guard against the (practically unreachable) all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Draws a uniform integer in `[0, span)` with the widening-multiply method.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full u64/i64 domain: every 64-bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = u64_to_unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice with the Fisher–Yates algorithm.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..100).any(|_| {
            StdRng::seed_from_u64(42);
            a.gen_range(0u64..1_000_000) != c.gen_range(0u64..1_000_000)
        });
        assert!(differs);
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(9u8..=9), 9);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        // Spread over most of the interval.
        assert!(lo < -1.0 && hi > 2.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }
}
