//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates its types with `#[derive(Serialize, Deserialize)]`
//! so they are ready for a real serialisation backend, but the build
//! environment has no network access and no vendored `serde`. Nothing in the
//! workspace calls serialisation *functions* (there are no `T: Serialize`
//! bounds anywhere), so these derives can expand to nothing: they only need
//! to exist so the attribute resolves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts any item, emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts any item, emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
