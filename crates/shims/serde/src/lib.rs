//! Offline API-surface stand-in for [`serde`](https://serde.rs).
//!
//! The build environment has no network access, so the real `serde` crate
//! cannot be fetched. The workspace only *annotates* types with the derives
//! (keeping them ready for a real backend) and never calls serialisation
//! functions, so marker traits plus no-op derive macros are sufficient.
//!
//! If the environment ever gains registry access, deleting the
//! `crates/shims/` directory and pointing `[workspace.dependencies]` at
//! crates.io restores full serde behaviour without touching any other code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}

// Like the real `serde` with the `derive` feature: re-export the derive
// macros under the same names as the traits (macros live in a separate
// namespace, so both resolve).
pub use serde_derive::{Deserialize, Serialize};
