//! Classification metrics: accuracy and confusion matrices (Figure 3 of the
//! paper reports per-cipher test confusion matrices).

use serde::{Deserialize, Serialize};

/// Fraction of predictions equal to the true labels (0.0 for empty input).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "predictions/labels length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions.iter().zip(labels.iter()).filter(|(p, l)| p == l).count();
    correct as f64 / predictions.len() as f64
}

/// A square confusion matrix. Rows index the true class, columns the
/// predicted class (same convention as Figure 3 of the paper, which reports
/// row-normalised percentages).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "confusion matrix needs at least one class");
        Self { classes, counts: vec![0; classes * classes] }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, true_class: usize, predicted_class: usize) {
        assert!(true_class < self.classes && predicted_class < self.classes, "class out of range");
        self.counts[true_class * self.classes + predicted_class] += 1;
    }

    /// Records a batch of observations.
    pub fn record_all(&mut self, true_classes: &[usize], predicted_classes: &[usize]) {
        assert_eq!(true_classes.len(), predicted_classes.len());
        for (&t, &p) in true_classes.iter().zip(predicted_classes.iter()) {
            self.record(t, p);
        }
    }

    /// Raw count at `(true_class, predicted_class)`.
    pub fn count(&self, true_class: usize, predicted_class: usize) -> u64 {
        self.counts[true_class * self.classes + predicted_class]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Row-normalised percentage at `(true_class, predicted_class)` — the
    /// numbers shown in Figure 3. Returns 0.0 for an empty row.
    pub fn percentage(&self, true_class: usize, predicted_class: usize) -> f64 {
        let row_total: u64 = (0..self.classes).map(|p| self.count(true_class, p)).sum();
        if row_total == 0 {
            0.0
        } else {
            100.0 * self.count(true_class, predicted_class) as f64 / row_total as f64
        }
    }

    /// Overall accuracy (trace of the matrix over the total count).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        diag as f64 / total as f64
    }

    /// Renders the matrix as row-normalised percentages, in the layout of
    /// Figure 3 (rows = true class, columns = predicted class).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("true\\pred");
        for p in 0..self.classes {
            out.push_str(&format!("{p:>10}"));
        }
        out.push('\n');
        for t in 0..self.classes {
            out.push_str(&format!("{t:>9}"));
            for p in 0..self.classes {
                out.push_str(&format!("{:>9.2}%", self.percentage(t, p)));
            }
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 0, 1], &[1, 0, 1]), 1.0);
        assert!((accuracy(&[1, 0, 0, 0], &[1, 1, 1, 1]) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_matrix_counts_and_percentages() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record_all(&[0, 0, 0, 1, 1], &[0, 0, 1, 1, 1]);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.total(), 5);
        assert!((cm.percentage(0, 0) - 66.666).abs() < 0.01);
        assert!((cm.percentage(1, 1) - 100.0).abs() < 1e-9);
        assert!((cm.accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.percentage(0, 0), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn render_contains_percentages() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(1, 0);
        let rendered = cm.render();
        assert!(rendered.contains("100.00%"));
        assert_eq!(format!("{cm}"), rendered);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn out_of_range_record_panics() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
