//! A minimal dense `f32` tensor with 2-D ([batch, features]) and
//! 3-D ([batch, channels, length]) access helpers.

use serde::{Deserialize, Serialize};

/// Dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor shape must not be empty");
        Self { data: vec![0.0; shape.iter().product()], shape: shape.to_vec() }
    }

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self { data, shape: shape.to_vec() }
    }

    /// Creates a 2-D tensor [rows, cols] from a slice of equally long rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have different lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self { data, shape: vec![rows.len(), cols] }
    }

    /// Consumes the tensor, returning its backing storage for reuse (the
    /// workspace arena recycles both vectors, capacity intact).
    pub(crate) fn into_parts(self) -> (Vec<f32>, Vec<usize>) {
        (self.data, self.shape)
    }

    /// Rebuilds a tensor from recycled storage.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub(crate) fn from_parts(data: Vec<f32>, shape: Vec<usize>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self { data, shape }
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(self.len(), shape.iter().product::<usize>(), "reshape must preserve length");
        Tensor { data: self.data.clone(), shape: shape.to_vec() }
    }

    /// Element at `[i, j]` of a 2-D tensor.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Sets element `[i, j]` of a 2-D tensor.
    #[inline]
    pub fn set2(&mut self, i: usize, j: usize, value: f32) {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j] = value;
    }

    /// Element at `[b, c, n]` of a 3-D tensor.
    #[inline]
    pub fn at3(&self, b: usize, c: usize, n: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        self.data[(b * self.shape[1] + c) * self.shape[2] + n]
    }

    /// Sets element `[b, c, n]` of a 3-D tensor.
    #[inline]
    pub fn set3(&mut self, b: usize, c: usize, n: usize, value: f32) {
        debug_assert_eq!(self.shape.len(), 3);
        self.data[(b * self.shape[1] + c) * self.shape[2] + n] = value;
    }

    /// Adds element `[b, c, n]` of a 3-D tensor.
    #[inline]
    pub fn add3(&mut self, b: usize, c: usize, n: usize, value: f32) {
        debug_assert_eq!(self.shape.len(), 3);
        self.data[(b * self.shape[1] + c) * self.shape[2] + n] += value;
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a + b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, factor: f32) -> Tensor {
        Tensor { data: self.data.iter().map(|v| v * factor).collect(), shape: self.shape.clone() }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute element (0.0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// For a 2-D tensor [rows, cols], the per-row arg-max column index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2, "argmax_rows requires a 2-D tensor");
        let cols = self.shape[1];
        self.data
            .chunks(cols)
            .map(|row| {
                // Ties resolve to the first (lowest) index.
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Extracts row `i` of a 2-D tensor as a vector.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of range.
    pub fn row(&self, i: usize) -> Vec<f32> {
        assert_eq!(self.shape.len(), 2, "row requires a 2-D tensor");
        let cols = self.shape[1];
        self.data[i * cols..(i + 1) * cols].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_length_mismatch_panics() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn indexing_2d_and_3d() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set2(1, 2, 5.0);
        assert_eq!(t.at2(1, 2), 5.0);
        assert_eq!(t.at2(0, 0), 0.0);

        let mut u = Tensor::zeros(&[2, 2, 3]);
        u.set3(1, 0, 2, 7.0);
        u.add3(1, 0, 2, 1.0);
        assert_eq!(u.at3(1, 0, 2), 8.0);
    }

    #[test]
    fn from_rows_layout() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.at2(1, 0), 3.0);
        assert_eq!(t.row(0), vec![1.0, 2.0]);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![0.5, 0.5, 0.5], &[3]);
        assert_eq!(a.add(&b).data(), &[1.5, 2.5, 3.5]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.sum(), 6.0);
        assert!((a.mean() - 2.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 3.0);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let t = Tensor::from_rows(&[vec![0.1, 0.9], vec![2.0, -1.0], vec![0.0, 0.0]]);
        assert_eq!(t.argmax_rows(), vec![1, 0, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "reshape must preserve length")]
    fn reshape_bad_length_panics() {
        Tensor::zeros(&[4]).reshape(&[5]);
    }
}
