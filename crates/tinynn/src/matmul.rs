//! Cache-blocked `f32` matrix multiplication kernels.
//!
//! These are the GEMM primitives behind the im2col convolution and the
//! vectorised fully connected layer. Three data layouts cover every use in
//! the library without ever materialising a transpose:
//!
//! * [`matmul`]      — `C[m,n] += A[m,k] · B[k,n]` (row-major everywhere);
//! * [`matmul_a_bt`] — `C[m,n] += A[m,k] · B[n,k]ᵀ` (dot products of rows);
//! * [`matmul_at_b`] — `C[m,n] += A[r,m]ᵀ · B[r,n]` (sum of row outer
//!   products — the gradient accumulation shape).
//!
//! The inner loops run over contiguous slices only (no index arithmetic per
//! element), which LLVM auto-vectorises, and the `k`/`n` dimensions are
//! blocked so the working set of the streamed `B` panel stays inside L1/L2.
//! [`matmul_par`] adds a deterministic split of the `m` dimension across OS
//! threads (`std::thread::scope`; this workspace has no external thread-pool
//! crate) for batched inference workloads.

use crate::parallel;

/// Work threshold (in FLOPs) below which [`matmul_par`] stays sequential —
/// spawning OS threads costs more than the multiply below this size.
const PAR_MIN_FLOPS: usize = 1 << 21;

/// Column-panel width: `NB` output columns are updated per pass so the `C`
/// row segment and the `B` panel rows stay cache-resident.
const NB: usize = 512;

/// Depth-panel height for the same reason on the `k` dimension.
const KB: usize = 256;

fn check_dims(c: &[f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m*k = {}x{}", m, k);
    assert_eq!(b.len(), k * n, "B must be k*n = {}x{}", k, n);
    assert_eq!(c.len(), m * n, "C must be m*n = {}x{}", m, n);
}

/// `C += A · B` with `A: [m,k]`, `B: [k,n]`, `C: [m,n]`, all row-major.
///
/// Accumulates into `C` (zero it first for a plain product). The `i-k-j`
/// loop order turns the innermost loop into `c_row += a_ik * b_row`, a fused
/// multiply-add over two contiguous slices.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn matmul(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(c, a, b, m, k, n);
    for jb in (0..n).step_by(NB) {
        let jw = NB.min(n - jb);
        for kb in (0..k).step_by(KB) {
            let kw = KB.min(k - kb);
            for i in 0..m {
                let a_row = &a[i * k + kb..i * k + kb + kw];
                let c_row = &mut c[i * n + jb..i * n + jb + jw];
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[(kb + kk) * n + jb..(kb + kk) * n + jb + jw];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    }
}

/// `C += A · Bᵀ` with `A: [m,k]`, `B: [n,k]`, `C: [m,n]`, all row-major.
///
/// Every output element is a dot product of two contiguous rows, the natural
/// layout for `Linear` (`y = x Wᵀ`) and for the conv weight gradient
/// (`dW = dY · colᵀ`).
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn matmul_a_bt(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m*k = {}x{}", m, k);
    assert_eq!(b.len(), n * k, "B must be n*k = {}x{}", n, k);
    assert_eq!(c.len(), m * n, "C must be m*n = {}x{}", m, n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

/// `C += Aᵀ · B` with `A: [r,m]`, `B: [r,n]`, `C: [m,n]`, all row-major.
///
/// Computed as a sum of per-row outer products so the inner loop still runs
/// over the contiguous `B` rows. This is the gradient shape: for `Linear`,
/// `dW = dYᵀ · X`; for the conv input gradient, `dcol = Wᵀ · dY`.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn matmul_at_b(c: &mut [f32], a: &[f32], b: &[f32], r: usize, m: usize, n: usize) {
    assert_eq!(a.len(), r * m, "A must be r*m = {}x{}", r, m);
    assert_eq!(b.len(), r * n, "B must be r*n = {}x{}", r, n);
    assert_eq!(c.len(), m * n, "C must be m*n = {}x{}", m, n);
    for row in 0..r {
        let a_row = &a[row * m..(row + 1) * m];
        let b_row = &b[row * n..(row + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// Like [`matmul`] but splits the rows of `C` across OS threads when the
/// problem is large enough to amortise thread spawning.
///
/// The row split is deterministic, and each row of `C` is produced by exactly
/// one thread with the same accumulation order as the sequential kernel, so
/// the result is bit-identical to [`matmul`].
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn matmul_par(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(c, a, b, m, k, n);
    let threads = parallel::thread_count_for(m, 2 * m * k * n, PAR_MIN_FLOPS);
    if threads <= 1 {
        matmul(c, a, b, m, k, n);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, c_chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let rows = c_chunk.len() / n;
            let row0 = chunk_idx * rows_per;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            scope.spawn(move || {
                let _serial = parallel::serial_region();
                matmul(c_chunk, a_chunk, b, rows, k, n)
            });
        }
    });
}

/// Reference (naive triple-loop) product `C = A · B`, kept for parity tests.
pub fn matmul_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn matmul_matches_reference_across_shapes() {
        for &(m, k, n) in
            &[(1usize, 1usize, 1usize), (3, 4, 5), (7, 13, 11), (16, 64, 128), (2, 300, 600)]
        {
            let a = init::uniform(&[m, k], -1.0, 1.0, 1).data().to_vec();
            let b = init::uniform(&[k, n], -1.0, 1.0, 2).data().to_vec();
            let expect = matmul_reference(&a, &b, m, k, n);
            let mut c = vec![0.0f32; m * n];
            matmul(&mut c, &a, &b, m, k, n);
            assert!(max_abs_diff(&c, &expect) < 1e-4, "matmul {m}x{k}x{n}");
            let mut cp = vec![0.0f32; m * n];
            matmul_par(&mut cp, &a, &b, m, k, n);
            assert_eq!(c, cp, "matmul_par must be bit-identical {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_a_bt_matches_reference() {
        let (m, k, n) = (5usize, 17usize, 9usize);
        let a = init::uniform(&[m, k], -1.0, 1.0, 3).data().to_vec();
        let bt = init::uniform(&[n, k], -1.0, 1.0, 4).data().to_vec();
        // Build B = (Bᵀ)ᵀ row-major for the reference.
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let expect = matmul_reference(&a, &b, m, k, n);
        let mut c = vec![0.0f32; m * n];
        matmul_a_bt(&mut c, &a, &bt, m, k, n);
        assert!(max_abs_diff(&c, &expect) < 1e-4);
    }

    #[test]
    fn matmul_at_b_matches_reference() {
        let (r, m, n) = (6usize, 4usize, 8usize);
        let at = init::uniform(&[r, m], -1.0, 1.0, 5).data().to_vec();
        let b = init::uniform(&[r, n], -1.0, 1.0, 6).data().to_vec();
        // Build A = (Aᵀ)ᵀ row-major [m, r] for the reference.
        let mut a = vec![0.0f32; m * r];
        for row in 0..r {
            for i in 0..m {
                a[i * r + row] = at[row * m + i];
            }
        }
        let expect = matmul_reference(&a, &b, m, r, n);
        let mut c = vec![0.0f32; m * n];
        matmul_at_b(&mut c, &at, &b, r, m, n);
        assert!(max_abs_diff(&c, &expect) < 1e-4);
    }

    #[test]
    fn accumulates_instead_of_overwriting() {
        let a = vec![1.0f32, 0.0, 0.0, 1.0];
        let b = vec![2.0f32, 3.0, 4.0, 5.0];
        let mut c = vec![10.0f32; 4];
        matmul(&mut c, &a, &b, 2, 2, 2);
        assert_eq!(c, vec![12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "A must be")]
    fn dimension_mismatch_panics() {
        let mut c = vec![0.0f32; 4];
        matmul(&mut c, &[1.0; 3], &[1.0; 4], 2, 2, 2);
    }
}
