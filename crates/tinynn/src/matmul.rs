//! Cache-blocked `f32` matrix multiplication kernels.
//!
//! These are the GEMM primitives behind the im2col convolution and the
//! vectorised fully connected layer. Three data layouts cover every use in
//! the library without ever materialising a transpose:
//!
//! * [`matmul`]      — `C[m,n] += A[m,k] · B[k,n]` (row-major everywhere);
//! * [`matmul_a_bt`] — `C[m,n] += A[m,k] · B[n,k]ᵀ` (dot products of rows);
//! * [`matmul_at_b`] — `C[m,n] += A[r,m]ᵀ · B[r,n]` (sum of row outer
//!   products — the gradient accumulation shape).
//!
//! The inner loops run over contiguous slices only (no index arithmetic per
//! element), which LLVM auto-vectorises, and the `k`/`n` dimensions are
//! blocked so the working set of the streamed `B` panel stays inside L1/L2.
//! [`matmul_par`] adds a deterministic split of the `m` dimension across OS
//! threads (`std::thread::scope`; this workspace has no external thread-pool
//! crate) for batched inference workloads.
//!
//! The *inference* hot path no longer uses these plain kernels directly: the
//! packed register-tiled family ([`pack_lhs`] → [`matmul_packed_lhs`] for
//! the convolution shape, [`pack_rhs_t`] → [`matmul_packed_rhs`] for the
//! fully connected shape) packs the weight operand once per layer call into
//! cache-friendly [`MR`]/[`NR`] panels and accumulates every `MR × NR`
//! output tile in registers with explicitly contracted FMA, flushing to `C`
//! once per [`KC`] depth block instead of once per depth step — roughly
//! double the throughput of the auto-vectorised loops on the network's
//! small-`m` GEMMs. The plain kernels remain the training/backward and
//! parity-reference paths.

use crate::parallel;
use crate::quant::Requantizer;

/// Work threshold (in FLOPs) below which [`matmul_par`] stays sequential —
/// spawning OS threads costs more than the multiply below this size.
const PAR_MIN_FLOPS: usize = 1 << 21;

/// Column-panel width: `NB` output columns are updated per pass so the `C`
/// row segment and the `B` panel rows stay cache-resident.
const NB: usize = 512;

/// Depth-panel height for the same reason on the `k` dimension.
const KB: usize = 256;

fn check_dims(c: &[f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m*k = {}x{}", m, k);
    assert_eq!(b.len(), k * n, "B must be k*n = {}x{}", k, n);
    assert_eq!(c.len(), m * n, "C must be m*n = {}x{}", m, n);
}

/// `C += A · B` with `A: [m,k]`, `B: [k,n]`, `C: [m,n]`, all row-major.
///
/// Accumulates into `C` (zero it first for a plain product). The `i-k-j`
/// loop order turns the innermost loop into `c_row += a_ik * b_row`, a fused
/// multiply-add over two contiguous slices.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn matmul(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(c, a, b, m, k, n);
    for jb in (0..n).step_by(NB) {
        let jw = NB.min(n - jb);
        for kb in (0..k).step_by(KB) {
            let kw = KB.min(k - kb);
            for i in 0..m {
                let a_row = &a[i * k + kb..i * k + kb + kw];
                let c_row = &mut c[i * n + jb..i * n + jb + jw];
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[(kb + kk) * n + jb..(kb + kk) * n + jb + jw];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    }
}

/// `C += A · Bᵀ` with `A: [m,k]`, `B: [n,k]`, `C: [m,n]`, all row-major.
///
/// Every output element is a dot product of two contiguous rows, the natural
/// layout for `Linear` (`y = x Wᵀ`) and for the conv weight gradient
/// (`dW = dY · colᵀ`).
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn matmul_a_bt(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m*k = {}x{}", m, k);
    assert_eq!(b.len(), n * k, "B must be n*k = {}x{}", n, k);
    assert_eq!(c.len(), m * n, "C must be m*n = {}x{}", m, n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

/// `C += Aᵀ · B` with `A: [r,m]`, `B: [r,n]`, `C: [m,n]`, all row-major.
///
/// Computed as a sum of per-row outer products so the inner loop still runs
/// over the contiguous `B` rows. This is the gradient shape: for `Linear`,
/// `dW = dYᵀ · X`; for the conv input gradient, `dcol = Wᵀ · dY`.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn matmul_at_b(c: &mut [f32], a: &[f32], b: &[f32], r: usize, m: usize, n: usize) {
    assert_eq!(a.len(), r * m, "A must be r*m = {}x{}", r, m);
    assert_eq!(b.len(), r * n, "B must be r*n = {}x{}", r, n);
    assert_eq!(c.len(), m * n, "C must be m*n = {}x{}", m, n);
    for row in 0..r {
        let a_row = &a[row * m..(row + 1) * m];
        let b_row = &b[row * n..(row + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// Like [`matmul`] but splits the rows of `C` across OS threads when the
/// problem is large enough to amortise thread spawning.
///
/// The row split is deterministic, and each row of `C` is produced by exactly
/// one thread with the same accumulation order as the sequential kernel, so
/// the result is bit-identical to [`matmul`].
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn matmul_par(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    check_dims(c, a, b, m, k, n);
    let threads = parallel::thread_count_for(m, 2 * m * k * n, PAR_MIN_FLOPS);
    if threads <= 1 {
        matmul(c, a, b, m, k, n);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, c_chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let rows = c_chunk.len() / n;
            let row0 = chunk_idx * rows_per;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            scope.spawn(move || {
                let _serial = parallel::serial_region();
                matmul(c_chunk, a_chunk, b, rows, k, n)
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Packed register-tiled kernels
// ---------------------------------------------------------------------------

/// Rows of one register micro-tile: `MR` output rows are accumulated
/// simultaneously, each broadcast from one packed weight lane.
pub const MR: usize = 4;

/// Columns of one register micro-tile: `NR` output columns (two 8-lane
/// `f32` vectors on AVX2) held in registers for the whole depth sweep.
pub const NR: usize = 16;

/// Depth block of the tiled kernels: the `B` column panel streamed by one
/// micro-tile pass is at most `KC × NR` floats (16 KiB), so it stays
/// L1-resident even for the paper configuration's `in_c · kernel = 2048`
/// fan-in.
pub const KC: usize = 256;

/// Fused multiply-add of the micro-kernels. On targets with hardware FMA
/// (the repo's x86-64-v3 baseline) this contracts to one `vfmadd`
/// instruction — without the explicit `mul_add`, Rust never contracts
/// floating-point expressions. On targets without FMA it falls back to
/// `mul + add` (a libm `fma` call would be orders of magnitude slower).
#[inline(always)]
fn fmadd(a: f32, b: f32, acc: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// Length of the pack produced by [`pack_lhs`] for an `[m, k]` left operand.
pub fn packed_lhs_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k
}

/// Packs the left GEMM operand (the weight matrix of a convolution) into
/// [`MR`]-row strips for [`matmul_packed_lhs`]: strip `s` holds rows
/// `s·MR .. s·MR+MR` k-major (`MR` consecutive values per depth step), so
/// the micro-kernel reads its `MR` broadcast lanes from one contiguous,
/// forward-moving stream. The final strip is zero-padded to `MR` rows,
/// which keeps the kernel branch-free on the row dimension (padded lanes
/// accumulate into registers that are simply never written back).
///
/// `pack` is a reusable buffer (cleared and resized here); packing an
/// `[m, k]` weight block costs one pass over it and is reused across every
/// window of a batch, so its cost is amortised to noise.
///
/// # Panics
///
/// Panics if `a.len() != m * k`.
pub fn pack_lhs(pack: &mut Vec<f32>, a: &[f32], m: usize, k: usize) {
    assert_eq!(a.len(), m * k, "A must be m*k = {}x{}", m, k);
    pack.resize(packed_lhs_len(m, k), 0.0);
    let strips = m.div_ceil(MR);
    for s in 0..strips {
        let i0 = s * MR;
        let rows = MR.min(m - i0);
        let dst = &mut pack[s * MR * k..(s + 1) * MR * k];
        if rows < MR {
            // `resize` only zero-fills growth; a reused buffer may hold
            // stale values in the padded lanes of the tail strip.
            dst.fill(0.0);
        }
        for i in 0..rows {
            let src = &a[(i0 + i) * k..(i0 + i + 1) * k];
            for (kk, &v) in src.iter().enumerate() {
                dst[kk * MR + i] = v;
            }
        }
    }
}

/// One full-width register tile: `C[i0.., jb..jb+NR] += strip · B` over
/// depth `[k0, k1)`. The `MR × NR` accumulator array lives entirely in
/// vector registers (8 × 256-bit on AVX2); `B` is touched with exactly one
/// aligned-friendly `NR`-wide load per depth step and `C` only once, after
/// the whole depth sweep — the memory traffic the plain `i-k-j` kernel pays
/// per depth step.
#[allow(clippy::too_many_arguments)] // GEMM tile: operands + geometry
#[inline]
fn tile_f32(
    c: &mut [f32],
    n: usize,
    i0: usize,
    jb: usize,
    rows: usize,
    pstrip: &[f32],
    b: &[f32],
    k0: usize,
    k1: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in k0..k1 {
        let lanes: &[f32; MR] = pstrip[kk * MR..kk * MR + MR].try_into().expect("MR lanes");
        let brow: &[f32; NR] = b[kk * n + jb..kk * n + jb + NR].try_into().expect("NR columns");
        for (acc_i, &av) in acc.iter_mut().zip(lanes.iter()) {
            for (av_j, &bv) in acc_i.iter_mut().zip(brow.iter()) {
                *av_j = fmadd(av, bv, *av_j);
            }
        }
    }
    for (i, acc_i) in acc.iter().enumerate().take(rows) {
        let crow = &mut c[(i0 + i) * n + jb..(i0 + i) * n + jb + NR];
        for (cv, &av) in crow.iter_mut().zip(acc_i.iter()) {
            *cv += av;
        }
    }
}

/// The masked column tail of [`tile_f32`]: identical accumulation order for
/// the `nr < NR` trailing columns, with the loop bound carried at runtime.
#[allow(clippy::too_many_arguments)] // GEMM tile: operands + geometry
#[inline]
fn tile_f32_tail(
    c: &mut [f32],
    n: usize,
    i0: usize,
    jb: usize,
    rows: usize,
    nr: usize,
    pstrip: &[f32],
    b: &[f32],
    k0: usize,
    k1: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in k0..k1 {
        let lanes = &pstrip[kk * MR..kk * MR + MR];
        let brow = &b[kk * n + jb..kk * n + jb + nr];
        for (acc_i, &av) in acc.iter_mut().zip(lanes.iter()) {
            for (av_j, &bv) in acc_i.iter_mut().zip(brow.iter()) {
                *av_j = fmadd(av, bv, *av_j);
            }
        }
    }
    for (i, acc_i) in acc.iter().enumerate().take(rows) {
        let crow = &mut c[(i0 + i) * n + jb..(i0 + i) * n + jb + nr];
        for (cv, &av) in crow.iter_mut().zip(acc_i.iter()) {
            *cv += av;
        }
    }
}

/// `C += A · B` with the left operand pre-packed by [`pack_lhs`]:
/// `pack: [⌈m/MR⌉·MR, k]` strip-major, `B: [k, n]` row-major,
/// `C: [m, n]` row-major.
///
/// This is the inference convolution kernel: the weight pack is built once
/// per layer call and reused across every batch item, and each `MR × NR`
/// output tile is accumulated entirely in registers with explicit FMA
/// (see [`tile_f32`]) instead of the load/FMA/store-per-depth-step pattern
/// of [`matmul`]. The depth dimension is blocked by [`KC`] so the streamed
/// `B` column panel stays L1-resident at any fan-in; accumulation order
/// over `k` is unchanged by the blocking, and every element of `C` is
/// produced by exactly one tile, so results do not depend on the blocking
/// constants' relation to the problem shape beyond float contraction.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn matmul_packed_lhs(c: &mut [f32], pack: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(pack.len(), packed_lhs_len(m, k), "pack must cover {}x{} in MR strips", m, k);
    assert_eq!(b.len(), k * n, "B must be k*n = {}x{}", k, n);
    assert_eq!(c.len(), m * n, "C must be m*n = {}x{}", m, n);
    let strips = m.div_ceil(MR);
    for kb in (0..k).step_by(KC) {
        let k1 = (kb + KC).min(k);
        for jb in (0..n).step_by(NR) {
            let nr = NR.min(n - jb);
            for s in 0..strips {
                let i0 = s * MR;
                let rows = MR.min(m - i0);
                let pstrip = &pack[s * MR * k..(s + 1) * MR * k];
                if nr == NR {
                    tile_f32(c, n, i0, jb, rows, pstrip, b, kb, k1);
                } else {
                    tile_f32_tail(c, n, i0, jb, rows, nr, pstrip, b, kb, k1);
                }
            }
        }
    }
}

/// Like [`matmul_packed_lhs`] but splits the row strips across OS threads
/// when the problem is large enough to amortise thread spawning. Each row
/// of `C` is produced by exactly one thread with the same accumulation
/// order as the sequential kernel, so the result is bit-identical to
/// [`matmul_packed_lhs`].
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn matmul_packed_lhs_par(c: &mut [f32], pack: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(pack.len(), packed_lhs_len(m, k), "pack must cover {}x{} in MR strips", m, k);
    let strips = m.div_ceil(MR);
    let threads = parallel::thread_count_for(strips, 2 * m * k * n, PAR_MIN_FLOPS);
    if threads <= 1 {
        matmul_packed_lhs(c, pack, b, m, k, n);
        return;
    }
    let strips_per = strips.div_ceil(threads);
    std::thread::scope(|scope| {
        for (idx, c_chunk) in c.chunks_mut(strips_per * MR * n).enumerate() {
            let rows = c_chunk.len() / n;
            let p0 = idx * strips_per * MR * k;
            let pack_chunk = &pack[p0..p0 + rows.div_ceil(MR) * MR * k];
            scope.spawn(move || {
                let _serial = parallel::serial_region();
                matmul_packed_lhs(c_chunk, pack_chunk, b, rows, k, n)
            });
        }
    });
}

/// Length of the pack produced by [`pack_rhs_t`] for an `[n, k]` transposed
/// right operand.
pub fn packed_rhs_len(n: usize, k: usize) -> usize {
    n.div_ceil(NR) * NR * k
}

/// Packs a right GEMM operand given in *transposed* row-major form
/// `bt: [n, k]` — the `[out, in]` weight layout of a fully connected layer
/// — into [`NR`]-column panels for [`matmul_packed_rhs`]: panel `p` holds
/// output columns `p·NR .. p·NR+NR` k-major (`NR` consecutive values per
/// depth step). The final panel is zero-padded, so padded accumulator
/// columns hold exact zeros and are simply never written back.
///
/// # Panics
///
/// Panics if `bt.len() != n * k`.
pub fn pack_rhs_t(pack: &mut Vec<f32>, bt: &[f32], n: usize, k: usize) {
    assert_eq!(bt.len(), n * k, "Bᵀ must be n*k = {}x{}", n, k);
    pack.resize(packed_rhs_len(n, k), 0.0);
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let j0 = p * NR;
        let cols = NR.min(n - j0);
        let dst = &mut pack[p * NR * k..(p + 1) * NR * k];
        if cols < NR {
            // `resize` only zero-fills growth; a reused buffer may hold
            // stale values in the padded lanes of the tail panel.
            dst.fill(0.0);
        }
        for j in 0..cols {
            let src = &bt[(j0 + j) * k..(j0 + j + 1) * k];
            for (kk, &v) in src.iter().enumerate() {
                dst[kk * NR + j] = v;
            }
        }
    }
}

/// `C += A · B` with the right operand pre-packed by [`pack_rhs_t`]:
/// `A: [m, k]` row-major (the activations), `pack: [k, ⌈n/NR⌉·NR]`
/// panel-major, `C: [m, n]` row-major — the fully connected shape
/// (`y = x Wᵀ` with `W` packed once and reused across batches).
///
/// Each `MR × NR` output tile accumulates in registers: per depth step the
/// packed panel provides one contiguous `NR`-wide load and the `A` rows
/// `MR` scalar broadcasts. Row tails fall back to a runtime-bounded lane
/// loop; column tails are handled by the zero-padded pack (the padded
/// accumulator columns stay zero and are not written back).
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn matmul_packed_rhs(c: &mut [f32], a: &[f32], pack: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m*k = {}x{}", m, k);
    assert_eq!(pack.len(), packed_rhs_len(n, k), "pack must cover {}x{} in NR panels", n, k);
    assert_eq!(c.len(), m * n, "C must be m*n = {}x{}", m, n);
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let jb = p * NR;
        let nr = NR.min(n - jb);
        let panel = &pack[p * NR * k..(p + 1) * NR * k];
        for ib in (0..m).step_by(MR) {
            let rows = MR.min(m - ib);
            let mut acc = [[0.0f32; NR]; MR];
            for kk in 0..k {
                let brow: &[f32; NR] = panel[kk * NR..kk * NR + NR].try_into().expect("NR columns");
                for (i, acc_i) in acc.iter_mut().enumerate().take(rows) {
                    let av = a[(ib + i) * k + kk];
                    for (av_j, &bv) in acc_i.iter_mut().zip(brow.iter()) {
                        *av_j = fmadd(av, bv, *av_j);
                    }
                }
            }
            for (i, acc_i) in acc.iter().enumerate().take(rows) {
                let crow = &mut c[(ib + i) * n + jb..(ib + i) * n + jb + nr];
                for (cv, &av) in crow.iter_mut().zip(acc_i.iter()) {
                    *cv += av;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Quantised kernels (i8-range weight codes × i16 activations, i32 panels)
// ---------------------------------------------------------------------------

/// Depth-panel height of the quantised kernels, chosen so an `i32`
/// accumulator can never overflow: every product of an i8-range code with an
/// i16 code is bounded by `127 · 32767 < 2²²`, and `QK` of them sum to below
/// `2³⁰`.
pub const QK: usize = 256;

/// Exact integer dot product of two `K`-element rows (compile-time length).
///
/// Both operands are `i16` so the reduction is the x86 `vpmaddwd` idiom
/// (pairwise i16 multiply-add); the constant trip count lets LLVM fully
/// unroll and vectorise it with no scalar epilogue (~1.5–2× the throughput
/// of the runtime-length loop, and ~2× the f32 FMA GEMM at the network's
/// fan-ins — the reason the quantised path beats the `f32` kernels).
/// Overflow-free for `K ≤ QK` when one operand holds i8-range codes
/// (|v| ≤ 127, the widened weight blocks of
/// [`crate::quant::QuantizedGemm::data16`]).
#[inline]
fn q_dot_const<const K: usize>(a: &[i16], b: &[i16]) -> i32 {
    let a = &a[..K];
    let b = &b[..K];
    let mut acc = 0i32;
    for t in 0..K {
        acc += a[t] as i32 * b[t] as i32;
    }
    acc
}

/// Runtime-length fallback of [`q_dot_const`] (still the `pmaddwd` idiom,
/// with a scalar epilogue). Overflow-free for `a.len() ≤ QK`.
#[inline]
fn q_dot_any(a: &[i16], b: &[i16]) -> i32 {
    let mut acc = 0i32;
    for (&av, &bv) in a.iter().zip(b.iter()) {
        acc += av as i32 * bv as i32;
    }
    acc
}

/// Deep dot (`k > QK`): exact `i32` accumulation inside [`QK`]-element
/// panels (constant-length, overflow-free), summed in `i64` across panels.
#[inline]
fn q_dot_deep(a: &[i16], b: &[i16]) -> i64 {
    let mut total = 0i64;
    let mut ita = a.chunks_exact(QK);
    let mut itb = b.chunks_exact(QK);
    for (a_chunk, b_chunk) in (&mut ita).zip(&mut itb) {
        total += q_dot_const::<QK>(a_chunk, b_chunk) as i64;
    }
    total + q_dot_any(ita.remainder(), itb.remainder()) as i64
}

/// The convolution-shaped GEMM body, monomorphised per depth `K ≤ QK`. The
/// `stride` between consecutive activation rows is independent of `K`, so
/// the same body serves the packed `[n, K]` layout (`stride == K`) and the
/// channels-last sliding-window layout (`stride == channels`, rows
/// overlapping by `K - stride` codes).
#[allow(clippy::too_many_arguments)] // GEMM shape: operands + dims
fn gemm_q8_const<const K: usize>(
    c: &mut [f32],
    a: &[i16],
    a_scales: &[f32],
    b: &[i16],
    b_scale: f32,
    m: usize,
    n: usize,
    stride: usize,
) {
    // One vectorised constant-depth dot per output element. Measured dead
    // end, twice: fusing 2 or 4 of these dots into one multi-accumulator
    // loop (to share the `b_row` loads) breaks LLVM's `vpmaddwd` reduction
    // pattern and costs ~1.7× throughput — the single-chain reduction *is*
    // the widened-accumulate micro-kernel on this target.
    for j in 0..n {
        let b_row = &b[j * stride..j * stride + K];
        for i in 0..m {
            c[i * n + j] +=
                a_scales[i] * b_scale * q_dot_const::<K>(&a[i * K..(i + 1) * K], b_row) as f32;
        }
    }
}

/// The convolution-shaped GEMM body for depths without a specialisation.
#[allow(clippy::too_many_arguments)] // GEMM shape: operands + dims
fn gemm_q8_any(
    c: &mut [f32],
    a: &[i16],
    a_scales: &[f32],
    b: &[i16],
    b_scale: f32,
    m: usize,
    n: usize,
    stride: usize,
    k: usize,
) {
    let deep = k > QK;
    for j in 0..n {
        let b_row = &b[j * stride..j * stride + k];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let dot = if deep { q_dot_deep(a_row, b_row) } else { q_dot_any(a_row, b_row) as i64 };
            c[i * n + j] += a_scales[i] * b_scale * dot as f32;
        }
    }
}

/// The fully-connected-shaped GEMM body, monomorphised per depth `K ≤ QK`.
fn gemm_q8_a_bt_const<const K: usize>(
    c: &mut [f32],
    a: &[i16],
    a_scales: &[f32],
    b: &[i16],
    b_scales: &[f32],
    m: usize,
    n: usize,
) {
    for i in 0..m {
        let a_row = &a[i * K..(i + 1) * K];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            *cv +=
                a_scales[i] * b_scales[j] * q_dot_const::<K>(a_row, &b[j * K..(j + 1) * K]) as f32;
        }
    }
}

/// The fully-connected-shaped GEMM body for depths without a
/// specialisation.
#[allow(clippy::too_many_arguments)] // GEMM shape: operands + dims
fn gemm_q8_a_bt_any(
    c: &mut [f32],
    a: &[i16],
    a_scales: &[f32],
    b: &[i16],
    b_scales: &[f32],
    m: usize,
    n: usize,
    k: usize,
) {
    let deep = k > QK;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let dot = if deep { q_dot_deep(a_row, b_row) } else { q_dot_any(a_row, b_row) as i64 };
            *cv += a_scales[i] * b_scales[j] * dot as f32;
        }
    }
}

/// Expands a `match` over the depth dimension that routes the common
/// conv/linear fan-ins (`in_c · kernel` and `2f` across the paper, scaled
/// and test configurations) to their monomorphised constant-depth GEMM
/// bodies, leaving every other depth on the runtime-length path.
macro_rules! q8_dispatch {
    ($k:expr, $const_body:ident, $any_body:ident, ($($args:expr),*)) => {
        match $k {
            8 => $const_body::<8>($($args),*),
            9 => $const_body::<9>($($args),*),
            12 => $const_body::<12>($($args),*),
            16 => $const_body::<16>($($args),*),
            18 => $const_body::<18>($($args),*),
            20 => $const_body::<20>($($args),*),
            24 => $const_body::<24>($($args),*),
            27 => $const_body::<27>($($args),*),
            32 => $const_body::<32>($($args),*),
            36 => $const_body::<36>($($args),*),
            40 => $const_body::<40>($($args),*),
            48 => $const_body::<48>($($args),*),
            64 => $const_body::<64>($($args),*),
            72 => $const_body::<72>($($args),*),
            80 => $const_body::<80>($($args),*),
            96 => $const_body::<96>($($args),*),
            128 => $const_body::<128>($($args),*),
            144 => $const_body::<144>($($args),*),
            160 => $const_body::<160>($($args),*),
            192 => $const_body::<192>($($args),*),
            256 => $const_body::<256>($($args),*),
            k => $any_body($($args,)* k),
        }
    };
}

/// Quantised convolution GEMM `C += diag(a_scales) · (A · Bᵀ) · b_scale`
/// with `A: [m,k]` i8-range weight codes (per-row scales), `B: [n,k]` `i16`
/// activation codes (one dynamic scale — the rows are the im2row lowering
/// of one input signal), `C: [m,n]` `f32`, all row-major.
///
/// Every output element is one exact integer dot product rescaled into
/// `f32`; the depth dimension dispatches to a constant-length body (see
/// [`q_dot_const`]) for the architecture's common fan-ins. The loop nest
/// streams one activation row against all weight rows (the weight block
/// stays L1-resident), which is the locality that matters for the
/// `[out_c, len]` convolution output shape.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
#[allow(clippy::too_many_arguments)] // GEMM shape: operands + dims
pub fn matmul_q8(
    c: &mut [f32],
    a: &[i16],
    a_scales: &[f32],
    b: &[i16],
    b_scale: f32,
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "A must be m*k = {}x{}", m, k);
    assert_eq!(a_scales.len(), m, "A needs one scale per row ({m})");
    assert_eq!(b.len(), n * k, "B must be n*k = {}x{}", n, k);
    assert_eq!(c.len(), m * n, "C must be m*n = {}x{}", m, n);
    q8_dispatch!(k, gemm_q8_const, gemm_q8_any, (c, a, a_scales, b, b_scale, m, n, k));
}

/// Like [`matmul_q8`], but the activation rows are *overlapping windows* of
/// one channels-last buffer: row `j` is `b[j·stride .. j·stride + k]`. This
/// is the zero-materialisation convolution shape — with the input stored
/// sample-major (`[len + kernel - 1, channels]`, zero-padded at both ends)
/// and the weight columns permuted to match, every output position's
/// receptive field is already one contiguous slice, so no im2col/im2row
/// lowering exists at all.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
#[allow(clippy::too_many_arguments)] // GEMM shape: operands + dims
pub fn matmul_q8_sliding(
    c: &mut [f32],
    a: &[i16],
    a_scales: &[f32],
    b: &[i16],
    b_scale: f32,
    m: usize,
    k: usize,
    n: usize,
    stride: usize,
) {
    assert_eq!(a.len(), m * k, "A must be m*k = {}x{}", m, k);
    assert_eq!(a_scales.len(), m, "A needs one scale per row ({m})");
    assert_eq!(c.len(), m * n, "C must be m*n = {}x{}", m, n);
    if n > 0 {
        assert!(
            b.len() >= (n - 1) * stride + k,
            "B must cover {} windows of {} codes at stride {}",
            n,
            k,
            stride
        );
    }
    q8_dispatch!(k, gemm_q8_const, gemm_q8_any, (c, a, a_scales, b, b_scale, m, n, stride));
}

/// The fused requantising convolution GEMM body, monomorphised per depth
/// `K ≤ QK`. Identical dot-product structure to [`gemm_q8_const`] (the
/// single-chain constant-depth reduction — see the negative result there;
/// this body deliberately does **not** re-tile), but instead of rescaling
/// into `f32` it adds the accumulator-unit bias and maps each `i32` sum
/// straight onto the consumer's `i16` grid with the per-channel fixed-point
/// requantiser, clamped to `[lo, hi]` (`lo = 0` is the fused ReLU).
///
/// The output is **position-major** `[n, m]` (`c[j·m + i]`): output position
/// `j`'s channels are contiguous, which *is* the channels-last body layout
/// the next layer's sliding windows read — chaining layers needs no
/// transpose pass at all.
#[allow(clippy::too_many_arguments)] // GEMM shape: operands + dims
fn gemm_q8_requant_const<const K: usize>(
    c: &mut [i16],
    a: &[i16],
    bias: &[i32],
    mults: &[Requantizer],
    b: &[i16],
    m: usize,
    n: usize,
    stride: usize,
    lo: i16,
    hi: i16,
) {
    for j in 0..n {
        let b_row = &b[j * stride..j * stride + K];
        let c_row = &mut c[j * m..(j + 1) * m];
        for (i, cv) in c_row.iter_mut().enumerate() {
            let acc = q_dot_const::<K>(&a[i * K..(i + 1) * K], b_row).saturating_add(bias[i]);
            *cv = mults[i].requantize_i16(acc, lo, hi);
        }
    }
}

/// The fused requantising convolution GEMM body for depths without a
/// specialisation (deep depths accumulate in `i64` across [`QK`]-panels and
/// saturate into `i32` before the requantiser).
#[allow(clippy::too_many_arguments)] // GEMM shape: operands + dims
fn gemm_q8_requant_any(
    c: &mut [i16],
    a: &[i16],
    bias: &[i32],
    mults: &[Requantizer],
    b: &[i16],
    m: usize,
    n: usize,
    stride: usize,
    lo: i16,
    hi: i16,
    k: usize,
) {
    let deep = k > QK;
    for j in 0..n {
        let b_row = &b[j * stride..j * stride + k];
        let c_row = &mut c[j * m..(j + 1) * m];
        for (i, cv) in c_row.iter_mut().enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let acc = if deep {
                let wide = q_dot_deep(a_row, b_row) + bias[i] as i64;
                wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32
            } else {
                q_dot_any(a_row, b_row).saturating_add(bias[i])
            };
            *cv = mults[i].requantize_i16(acc, lo, hi);
        }
    }
}

/// Fully fused integer convolution layer: the sliding-window GEMM of
/// [`matmul_q8_sliding`] with bias add, per-channel fixed-point
/// requantisation and output clamp folded into the accumulator store —
/// `c[j·m + i] = clamp(requant_i(dot_i(j) + bias_q[i]), lo, hi)`.
///
/// This is the whole layer body of the fixed-point inference chain:
/// activations enter as `i16` codes (the overlapping windows of `b`) and
/// leave as `i16` codes on the consumer's grid, position-major, with no
/// `f32` value and no scale scan anywhere in between. `lo = 0` fuses the
/// following ReLU.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
#[allow(clippy::too_many_arguments)] // GEMM shape: operands + dims
pub fn matmul_q8_requant_sliding(
    c: &mut [i16],
    a: &[i16],
    bias: &[i32],
    mults: &[Requantizer],
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
    stride: usize,
    lo: i16,
    hi: i16,
) {
    assert_eq!(a.len(), m * k, "A must be m*k = {}x{}", m, k);
    assert_eq!(bias.len(), m, "A needs one bias per row ({m})");
    assert_eq!(mults.len(), m, "A needs one requantiser per row ({m})");
    assert_eq!(c.len(), n * m, "C must be n*m = {}x{} (position-major)", n, m);
    if n > 0 {
        assert!(
            b.len() >= (n - 1) * stride + k,
            "B must cover {} windows of {} codes at stride {}",
            n,
            k,
            stride
        );
    }
    q8_dispatch!(
        k,
        gemm_q8_requant_const,
        gemm_q8_requant_any,
        (c, a, bias, mults, b, m, n, stride, lo, hi)
    );
}

/// The SIMD fast path of [`matmul_q8_requant_sliding`]: the same fused layer
/// body on the pair-packed weight layout ([`crate::quant::QuantizedGemm::packed16`])
/// with a per-layer uniform shift, computed by `qsimd`'s `vpmaddwd` kernel —
/// accumulators live in channel lanes, so the per-output horizontal
/// reductions that cap the scalar kernels at small depths disappear
/// entirely.
///
/// Returns `false` without touching `c` when the shape is outside the
/// accelerated envelope (`m % 8 != 0`, `k > QK`, no AVX2, oversized bias) —
/// the caller then runs [`matmul_q8_requant_sliding`], which computes the
/// **same codes bit for bit**: the integer sums are associative and the
/// vector epilogue transcribes [`Requantizer::apply`] exactly (a property
/// test pins this).
#[allow(clippy::too_many_arguments)] // GEMM shape: operands + dims
pub fn matmul_q8_requant_sliding_packed(
    c: &mut [i16],
    packed: &[i16],
    bias: &[i32],
    mults: &[i32],
    shift: u8,
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
    stride: usize,
    lo: i16,
    hi: i16,
) -> bool {
    qsimd::gemm_requant_packed(c, packed, bias, mults, shift, b, m, k, n, stride, lo, hi)
}

/// Requantises existing `i16` codes onto another grid (`dst[i] =
/// clamp(requant(src[i]), lo, hi)`) — the identity-shortcut rescale of the
/// fixed-point residual block, where the block input's codes must move onto
/// the block output's grid before the integer add.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn requantize_codes_into(dst: &mut [i16], src: &[i16], r: Requantizer, lo: i16, hi: i16) {
    assert_eq!(dst.len(), src.len(), "one destination code per source code");
    // The vector path computes the identical fixed-point map (qsimd's parity
    // tests pin it against the scalar `apply` bit for bit).
    if qsimd::requantize_codes(dst, src, r.mult(), r.shift(), lo, hi) {
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = r.requantize_i16(s as i32, lo, hi);
    }
}

/// Quantised `C += diag(a_scales) · (A · Bᵀ) · diag(b_scales)` with
/// `A: [m,k]` `i16` activation codes (per-row scales), `B: [n,k]` i8-range
/// weight codes (per-row scales), `C: [m,n]` `f32`, all row-major — the
/// fully connected shape (`y = x Wᵀ` with per-batch-row activation scales
/// and per-output-channel weight scales).
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
#[allow(clippy::too_many_arguments)] // GEMM shape: operands + dims
pub fn matmul_q8_a_bt(
    c: &mut [f32],
    a: &[i16],
    a_scales: &[f32],
    b: &[i16],
    b_scales: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "A must be m*k = {}x{}", m, k);
    assert_eq!(a_scales.len(), m, "A needs one scale per row ({m})");
    assert_eq!(b.len(), n * k, "B must be n*k = {}x{}", n, k);
    assert_eq!(b_scales.len(), n, "B needs one scale per row ({n})");
    assert_eq!(c.len(), m * n, "C must be m*n = {}x{}", m, n);
    q8_dispatch!(k, gemm_q8_a_bt_const, gemm_q8_a_bt_any, (c, a, a_scales, b, b_scales, m, n));
}

/// Reference (naive, exact `i64`) integer product `A[m,k] · B[n,k]ᵀ` of the
/// quantised operands, kept for parity tests of the optimised kernels.
pub fn matmul_q8_reference(a: &[i16], b: &[i16], m: usize, k: usize, n: usize) -> Vec<i64> {
    let mut c = vec![0i64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for kk in 0..k {
                acc += a[i * k + kk] as i64 * b[j * k + kk] as i64;
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Reference (naive triple-loop) product `C = A · B`, kept for parity tests.
pub fn matmul_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn matmul_matches_reference_across_shapes() {
        for &(m, k, n) in
            &[(1usize, 1usize, 1usize), (3, 4, 5), (7, 13, 11), (16, 64, 128), (2, 300, 600)]
        {
            let a = init::uniform(&[m, k], -1.0, 1.0, 1).data().to_vec();
            let b = init::uniform(&[k, n], -1.0, 1.0, 2).data().to_vec();
            let expect = matmul_reference(&a, &b, m, k, n);
            let mut c = vec![0.0f32; m * n];
            matmul(&mut c, &a, &b, m, k, n);
            assert!(max_abs_diff(&c, &expect) < 1e-4, "matmul {m}x{k}x{n}");
            let mut cp = vec![0.0f32; m * n];
            matmul_par(&mut cp, &a, &b, m, k, n);
            assert_eq!(c, cp, "matmul_par must be bit-identical {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_a_bt_matches_reference() {
        let (m, k, n) = (5usize, 17usize, 9usize);
        let a = init::uniform(&[m, k], -1.0, 1.0, 3).data().to_vec();
        let bt = init::uniform(&[n, k], -1.0, 1.0, 4).data().to_vec();
        // Build B = (Bᵀ)ᵀ row-major for the reference.
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let expect = matmul_reference(&a, &b, m, k, n);
        let mut c = vec![0.0f32; m * n];
        matmul_a_bt(&mut c, &a, &bt, m, k, n);
        assert!(max_abs_diff(&c, &expect) < 1e-4);
    }

    #[test]
    fn matmul_at_b_matches_reference() {
        let (r, m, n) = (6usize, 4usize, 8usize);
        let at = init::uniform(&[r, m], -1.0, 1.0, 5).data().to_vec();
        let b = init::uniform(&[r, n], -1.0, 1.0, 6).data().to_vec();
        // Build A = (Aᵀ)ᵀ row-major [m, r] for the reference.
        let mut a = vec![0.0f32; m * r];
        for row in 0..r {
            for i in 0..m {
                a[i * r + row] = at[row * m + i];
            }
        }
        let expect = matmul_reference(&a, &b, m, r, n);
        let mut c = vec![0.0f32; m * n];
        matmul_at_b(&mut c, &at, &b, r, m, n);
        assert!(max_abs_diff(&c, &expect) < 1e-4);
    }

    // The packed kernels' tile-boundary shape sweeps (sub-tile remainders,
    // >KC depths, random odd shapes, `_par` bit-identity, the packed-rhs
    // transpose equivalence) live in `tests/gemm_props.rs`; the tests here
    // only cover properties that sweep cannot express.

    #[test]
    fn packed_lhs_accumulates_and_handles_empty_depth() {
        let a = vec![1.0f32, 0.0, 0.0, 1.0];
        let b = vec![2.0f32, 3.0, 4.0, 5.0];
        let mut pack = Vec::new();
        pack_lhs(&mut pack, &a, 2, 2);
        let mut c = vec![10.0f32; 4];
        matmul_packed_lhs(&mut c, &pack, &b, 2, 2, 2);
        assert_eq!(c, vec![12.0, 13.0, 14.0, 15.0]);
        // k = 0: a valid no-op that must leave C untouched.
        pack_lhs(&mut pack, &[], 3, 0);
        let mut c0 = vec![7.0f32; 6];
        matmul_packed_lhs(&mut c0, &pack, &[], 3, 0, 2);
        assert_eq!(c0, vec![7.0; 6]);
    }

    #[test]
    fn packed_lhs_reused_buffer_clears_stale_padding() {
        // A wide pack followed by a narrower one with a padded tail strip
        // must not leak the first pack's values into the padding lanes.
        let mut pack = Vec::new();
        pack_lhs(&mut pack, &[9.0f32; 8 * 4], 8, 4);
        let a: Vec<f32> = (0..3 * 2).map(|x| x as f32).collect();
        pack_lhs(&mut pack, &a, 3, 2);
        let b = vec![1.0f32, 1.0, 1.0, 1.0]; // [2, 2] of ones
        let expect = matmul_reference(&a, &b, 3, 2, 2);
        let mut c = vec![0.0f32; 6];
        matmul_packed_lhs(&mut c, &pack, &b, 3, 2, 2);
        assert_eq!(c, expect);
    }

    #[test]
    fn accumulates_instead_of_overwriting() {
        let a = vec![1.0f32, 0.0, 0.0, 1.0];
        let b = vec![2.0f32, 3.0, 4.0, 5.0];
        let mut c = vec![10.0f32; 4];
        matmul(&mut c, &a, &b, 2, 2, 2);
        assert_eq!(c, vec![12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "A must be")]
    fn dimension_mismatch_panics() {
        let mut c = vec![0.0f32; 4];
        matmul(&mut c, &[1.0; 3], &[1.0; 4], 2, 2, 2);
    }

    /// Deterministic pseudo-random quantised operands for kernel tests:
    /// `a` holds i8-range codes (the weight side), `b` full i16 codes.
    fn q_operands(m: usize, k: usize, n: usize, seed: u64) -> (Vec<i16>, Vec<i16>) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let a: Vec<i16> = (0..m * k).map(|_| ((next() % 255) as i64 - 127) as i16).collect();
        let b: Vec<i16> = (0..n * k).map(|_| ((next() % 65535) as i64 - 32767) as i16).collect();
        (a, b)
    }

    #[test]
    fn matmul_q8_matches_exact_integer_reference() {
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 7), (8, 72, 130), (5, 300, 520)] {
            let (a, b) = q_operands(m, k, n, 7 + (m * k * n) as u64);
            let a_scales: Vec<f32> = (0..m).map(|i| 0.01 + i as f32 * 1e-3).collect();
            let b_scale = 2.5e-4f32;
            let exact = matmul_q8_reference(&a, &b, m, k, n);
            let mut c = vec![0.0f32; m * n];
            matmul_q8(&mut c, &a, &a_scales, &b, b_scale, m, k, n);
            for (idx, (&got, &want)) in c.iter().zip(exact.iter()).enumerate() {
                let expect = a_scales[idx / n] * b_scale * want as f32;
                let tol = 1e-5 * (1.0 + expect.abs());
                assert!((got - expect).abs() <= tol, "{m}x{k}x{n} at {idx}: {got} vs {expect}");
            }
        }
    }

    #[test]
    fn matmul_q8_a_bt_is_exact_up_to_scaling() {
        let (m, k, n) = (4usize, 300usize, 6usize);
        let (bq, aq) = q_operands(n, k, m, 99);
        let a_scales: Vec<f32> = (0..m).map(|i| 1e-4 + i as f32 * 1e-5).collect();
        let b_scales: Vec<f32> = (0..n).map(|j| 0.02 + j as f32 * 1e-3).collect();
        let mut c = vec![0.0f32; m * n];
        matmul_q8_a_bt(&mut c, &aq, &a_scales, &bq, &b_scales, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    acc += aq[i * k + kk] as i64 * bq[j * k + kk] as i64;
                }
                let expect = a_scales[i] * b_scales[j] * acc as f32;
                let got = c[i * n + j];
                assert!((got - expect).abs() <= 1e-5 * (1.0 + expect.abs()), "{got} vs {expect}");
            }
        }
    }

    #[test]
    fn matmul_q8_accumulates_instead_of_overwriting() {
        // A = I (weight codes), B rows = [2,3] and [4,5]: C_ij = B[j][i].
        let a = vec![1i16, 0, 0, 1];
        let b = vec![2i16, 3, 4, 5];
        let mut c = vec![10.0f32; 4];
        matmul_q8(&mut c, &a, &[1.0, 1.0], &b, 1.0, 2, 2, 2);
        assert_eq!(c, vec![12.0, 14.0, 13.0, 15.0]);
    }

    #[test]
    fn matmul_q8_deep_k_does_not_overflow() {
        // Worst-case magnitudes at a depth well past one i32 panel: the
        // panel-accumulation scheme must stay exact.
        let k = 3 * QK + 17;
        let a = vec![127i16; k];
        let b = vec![32767i16; k];
        let exact = matmul_q8_reference(&a, &b, 1, k, 1)[0];
        let mut c = vec![0.0f32; 1];
        matmul_q8(&mut c, &a, &[1.0], &b, 1.0, 1, k, 1);
        let expect = exact as f32;
        assert!((c[0] - expect).abs() <= 1e-4 * expect.abs(), "{} vs {expect}", c[0]);
        let mut c2 = vec![0.0f32; 1];
        matmul_q8_a_bt(&mut c2, &b, &[1.0], &a, &[1.0], 1, k, 1);
        assert!((c2[0] - expect).abs() <= 1e-4 * expect.abs(), "{} vs {expect}", c2[0]);
    }

    #[test]
    #[should_panic(expected = "A needs one scale per row")]
    fn matmul_q8_scale_mismatch_panics() {
        let mut c = vec![0.0f32; 4];
        matmul_q8(&mut c, &[1i16; 4], &[1.0; 1], &[1i16; 4], 1.0, 2, 2, 2);
    }

    #[test]
    fn matmul_q8_sliding_matches_packed_layout() {
        // A channels-last sliding buffer with stride < k produces the same
        // products as explicitly materialising every overlapping window.
        for &(m, stride, k, n) in
            &[(3usize, 2usize, 6usize, 17usize), (5, 1, 9, 30), (4, 16, 144, 12), (2, 4, 4, 9)]
        {
            let len_b = (n - 1) * stride + k;
            let (a, b_all) = q_operands(m, k, len_b.div_ceil(k), 31);
            let buf = &b_all[..len_b];
            let a_scales: Vec<f32> = (0..m).map(|i| 0.01 + i as f32 * 1e-3).collect();
            let b_scale = 3e-4f32;
            let mut packed = Vec::with_capacity(n * k);
            for j in 0..n {
                packed.extend_from_slice(&buf[j * stride..j * stride + k]);
            }
            let mut c_packed = vec![0.0f32; m * n];
            matmul_q8(&mut c_packed, &a, &a_scales, &packed, b_scale, m, k, n);
            let mut c_sliding = vec![0.0f32; m * n];
            matmul_q8_sliding(&mut c_sliding, &a, &a_scales, buf, b_scale, m, k, n, stride);
            assert_eq!(c_packed, c_sliding, "m={m} stride={stride} k={k} n={n}");
        }
    }
}
