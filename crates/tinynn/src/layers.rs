//! Neural-network layers with analytic forward/backward passes.
//!
//! Layout conventions:
//!
//! * convolutional tensors are `[batch, channels, length]`;
//! * fully-connected tensors are `[batch, features]`.
//!
//! Layers hold **parameters only** — weights, biases and (for batch
//! normalisation) running statistics. Everything a pass needs beyond that —
//! backward caches, im2col scratch — lives in an explicit [`Workspace`], so
//! `forward` takes `&self`: one trained network can be shared across threads
//! (`Layer: Send + Sync`) with a cheap per-thread workspace instead of a
//! per-thread clone of the weights.
//!
//! During a *training* `forward` every layer pushes one cache entry onto the
//! workspace stack; `backward` (which still takes `&mut self` to accumulate
//! parameter gradients into the layer's [`Param`]s) pops the entries in
//! reverse. Inference (`training == false`) records nothing, and layer
//! outputs are drawn from the workspace's output-activation arena
//! ([`Workspace::uninit_tensor`]) with containers recycling dead
//! intermediates — a warm inference pass performs **zero heap
//! allocations**.
//!
//! The forward hot paths run the packed register-tiled GEMM kernels of
//! [`crate::matmul`]: `Conv1d` packs its weight block into `MR`-row strips
//! once per call and lowers each item to im2col → [`matmul::matmul_packed_lhs`]
//! (col2im for the input gradient), `Linear` packs `Wᵀ` into `NR`-column
//! panels for [`matmul::matmul_packed_rhs`], and the normalisation/pooling
//! layers operate on contiguous channel slices. The original scalar
//! implementations survive as `*_reference` methods so parity tests can pin
//! the optimised kernels against them.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

use crate::init;
use crate::matmul;
use crate::parallel;
use crate::param::Param;
use crate::tensor::Tensor;
use crate::workspace::{LayerCache, Workspace};

/// Work threshold (in FLOPs) below which convolution stays single-threaded.
const CONV_PAR_MIN_FLOPS: usize = 1 << 21;

/// Panic for a cache entry that does not belong to the popping layer — a
/// programming error in the forward/backward traversal order, not a user
/// mistake.
fn cache_mismatch(layer: &str, found: &LayerCache) -> ! {
    panic!(
        "{layer}: workspace cache mismatch (found {} entry; \
         forward and backward must traverse layers in reverse order)",
        found.kind()
    )
}

/// A differentiable layer.
///
/// Parameters are shared state (`&self` forward); per-call scratch and
/// backward caches live in the caller-provided [`Workspace`].
pub trait Layer: Send + Sync {
    /// Computes the layer output. `training` selects batch statistics vs.
    /// running statistics in normalisation layers and controls whether a
    /// backward cache is pushed onto `ws` (inference pushes nothing).
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor;

    /// Back-propagates `grad_output`, returning the gradient with respect to
    /// the layer input and accumulating parameter gradients.
    ///
    /// Must be called after a `forward` pass with `training == true` on the
    /// same workspace (the layer pops its cache from `ws`).
    fn backward(&mut self, grad_output: &Tensor, ws: &mut Workspace) -> Tensor;

    /// Shared access to the layer's trainable parameters, in a fixed order
    /// matching [`Layer::params_mut`].
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the layer's trainable parameters, in a fixed order
    /// matching [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Shared access to the layer's non-trainable state buffers (batch-norm
    /// running statistics), in a fixed order matching [`Layer::buffers_mut`].
    fn buffers(&self) -> Vec<&[f32]> {
        Vec::new()
    }

    /// Mutable access to the layer's non-trainable state buffers, in a fixed
    /// order matching [`Layer::buffers`].
    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        Vec::new()
    }

    /// Zeroes every parameter gradient.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

/// One consuming step of a sequential inference/training chain: runs `layer`
/// on `x` and recycles `x`'s storage into the workspace arena. Containers
/// use this for every intermediate so the "recycle exactly after the
/// consumer" invariant is structural rather than hand-maintained per layer.
pub fn forward_consuming<L: Layer + ?Sized>(
    layer: &L,
    x: Tensor,
    ws: &mut Workspace,
    training: bool,
) -> Tensor {
    let y = layer.forward(&x, ws, training);
    ws.recycle(x);
    y
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Rectified linear unit.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Relu;

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self
    }
}

impl Layer for Relu {
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        if training {
            ws.push(LayerCache::Mask(input.data().iter().map(|&v| v > 0.0).collect()));
        }
        let mut out = ws.uninit_tensor(input.shape());
        for (dst, &v) in out.data_mut().iter_mut().zip(input.data().iter()) {
            *dst = v.max(0.0);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, ws: &mut Workspace) -> Tensor {
        let mask = match ws.pop("Relu") {
            LayerCache::Mask(mask) => mask,
            other => cache_mismatch("Relu", &other),
        };
        assert_eq!(grad_output.len(), mask.len(), "Relu: gradient/mask length mismatch");
        let data = grad_output
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.shape())
    }
}

// ---------------------------------------------------------------------------
// Linear (fully connected)
// ---------------------------------------------------------------------------

/// Fully connected layer: `y = x Wᵀ + b` with `x: [B, in]`, `W: [out, in]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a fully connected layer with He-uniform initialisation.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Self {
            weight: Param::new(init::he_uniform(&[out_features, in_features], in_features, seed)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The `[out, in]` weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The `[out]` bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    /// Naive scalar-loop forward pass, kept as the parity reference for the
    /// GEMM implementation. Pure: touches no caches.
    pub fn forward_reference(&self, input: &Tensor) -> Tensor {
        let batch = input.shape()[0];
        let mut out = Tensor::zeros(&[batch, self.out_features]);
        for b in 0..batch {
            for o in 0..self.out_features {
                let mut acc = self.bias.value.data()[o];
                for i in 0..self.in_features {
                    acc += input.at2(b, i) * self.weight.value.at2(o, i);
                }
                out.set2(b, o, acc);
            }
        }
        out
    }

    /// Naive scalar-loop backward pass, kept as the parity reference. Pure:
    /// returns `(grad_input, grad_weight, grad_bias)` without touching the
    /// layer's accumulators.
    pub fn backward_reference(
        &self,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> (Tensor, Tensor, Tensor) {
        let batch = input.shape()[0];
        let mut grad_input = Tensor::zeros(&[batch, self.in_features]);
        let mut grad_weight = Tensor::zeros(&[self.out_features, self.in_features]);
        let mut grad_bias = Tensor::zeros(&[self.out_features]);
        for b in 0..batch {
            for o in 0..self.out_features {
                let g = grad_output.at2(b, o);
                grad_bias.data_mut()[o] += g;
                for i in 0..self.in_features {
                    let w_idx = o * self.in_features + i;
                    grad_weight.data_mut()[w_idx] += g * input.at2(b, i);
                    let gi = grad_input.at2(b, i) + g * self.weight.value.data()[w_idx];
                    grad_input.set2(b, i, gi);
                }
            }
        }
        (grad_input, grad_weight, grad_bias)
    }
}

impl Layer for Linear {
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Linear expects a 2-D input");
        assert_eq!(input.shape()[1], self.in_features, "Linear input feature mismatch");
        let batch = input.shape()[0];
        let mut out = ws.uninit_tensor(&[batch, self.out_features]);
        for row in out.data_mut().chunks_mut(self.out_features) {
            row.copy_from_slice(self.bias.value.data());
        }
        // Pack Wᵀ into NR-column panels once per call (weights may change
        // between calls during training, so the pack is rebuilt — one pass
        // over the weight block, amortised across the batch rows) and run
        // the register-tiled kernel.
        matmul::pack_rhs_t(
            &mut ws.pack,
            self.weight.value.data(),
            self.out_features,
            self.in_features,
        );
        matmul::matmul_packed_rhs(
            out.data_mut(),
            input.data(),
            &ws.pack,
            batch,
            self.in_features,
            self.out_features,
        );
        if training {
            ws.push(LayerCache::Input(input.clone()));
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, ws: &mut Workspace) -> Tensor {
        let input = match ws.pop("Linear") {
            LayerCache::Input(input) => input,
            other => cache_mismatch("Linear", &other),
        };
        let batch = input.shape()[0];
        let mut grad_input = Tensor::zeros(&[batch, self.in_features]);
        // dX = dY · W
        matmul::matmul(
            grad_input.data_mut(),
            grad_output.data(),
            self.weight.value.data(),
            batch,
            self.out_features,
            self.in_features,
        );
        // dW += dYᵀ · X
        matmul::matmul_at_b(
            self.weight.grad.data_mut(),
            grad_output.data(),
            input.data(),
            batch,
            self.out_features,
            self.in_features,
        );
        // db += column sums of dY
        let grad_bias = self.bias.grad.data_mut();
        for g_row in grad_output.data().chunks(self.out_features) {
            for (bg, &g) in grad_bias.iter_mut().zip(g_row.iter()) {
                *bg += g;
            }
        }
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

// ---------------------------------------------------------------------------
// Conv1d
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread im2col scratch used only when the batch fans out across
    /// threads (worker threads cannot share the caller's workspace buffer).
    static COL_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Writes the im2col lowering of one `[C, len]` input signal into `col`.
///
/// Row `c*kernel + t` of the `[C*kernel, len]` output is the input channel
/// `c` shifted by `t - pad`, zero-padded at the borders — every row is a
/// single contiguous `copy_from_slice` plus zero fills, and the row order
/// matches the `[out_c, in_c, kernel]` weight layout so the weight tensor is
/// usable as the GEMM left operand without repacking. (The quantised
/// convolution does not lower at all — see `qlayers::transpose_pad_q` for
/// its channels-last windowing.)
fn im2col(col: &mut Vec<f32>, x: &[f32], channels: usize, len: usize, kernel: usize, pad: usize) {
    col.resize(channels * kernel * len, 0.0);
    for c in 0..channels {
        let x_row = &x[c * len..(c + 1) * len];
        for t in 0..kernel {
            let row = &mut col[(c * kernel + t) * len..(c * kernel + t + 1) * len];
            let shift = t as isize - pad as isize;
            let j0 = (-shift).clamp(0, len as isize) as usize;
            let j1 = (len as isize - shift).clamp(0, len as isize) as usize;
            row[..j0].fill(0.0);
            row[j1..].fill(0.0);
            if j1 > j0 {
                let s0 = (j0 as isize + shift) as usize;
                row[j0..j1].copy_from_slice(&x_row[s0..s0 + (j1 - j0)]);
            }
        }
    }
}

/// Scatter-adds a `[C*kernel, len]` column-gradient back onto the `[C, len]`
/// input gradient (the adjoint of [`im2col`]).
fn col2im_add(
    gx: &mut [f32],
    dcol: &[f32],
    channels: usize,
    len: usize,
    kernel: usize,
    pad: usize,
) {
    for c in 0..channels {
        let gx_row = &mut gx[c * len..(c + 1) * len];
        for t in 0..kernel {
            let row = &dcol[(c * kernel + t) * len..(c * kernel + t + 1) * len];
            let shift = t as isize - pad as isize;
            let j0 = (-shift).clamp(0, len as isize) as usize;
            let j1 = (len as isize - shift).clamp(0, len as isize) as usize;
            if j1 > j0 {
                let s0 = (j0 as isize + shift) as usize;
                for (g, &d) in gx_row[s0..s0 + (j1 - j0)].iter_mut().zip(row[j0..j1].iter()) {
                    *g += d;
                }
            }
        }
    }
}

/// 1-D convolution with stride 1 and "same" zero padding, matching the
/// convolutional layers of the paper's CNN (Figure 2).
///
/// The forward and backward passes lower to im2col → GEMM: the
/// `[out_c, in_c, kernel]` weight tensor is row-major exactly the
/// `[out_c, in_c*kernel]` GEMM operand, and the im2col matrix is built with
/// contiguous row copies, so the whole convolution is three cache-blocked
/// matrix products. Batches fan out across threads at inference; the im2col
/// scratch comes from the workspace on the sequential paths and from a
/// per-thread buffer inside the fan-out.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    weight: Param, // [out_c, in_c, k]
    bias: Param,   // [out_c]
    in_channels: usize,
    out_channels: usize,
    kernel_size: usize,
}

impl Conv1d {
    /// Creates a convolution layer with He-uniform initialisation.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_size` is zero.
    pub fn new(in_channels: usize, out_channels: usize, kernel_size: usize, seed: u64) -> Self {
        assert!(kernel_size > 0, "kernel size must be non-zero");
        let fan_in = in_channels * kernel_size;
        Self {
            weight: Param::new(init::he_uniform(
                &[out_channels, in_channels, kernel_size],
                fan_in,
                seed,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel_size,
        }
    }

    /// Kernel size.
    pub fn kernel_size(&self) -> usize {
        self.kernel_size
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The `[out_c, in_c, kernel]` weight tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The `[out_c]` bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    #[inline]
    fn w(&self, o: usize, i: usize, t: usize) -> f32 {
        self.weight.value.data()[(o * self.in_channels + i) * self.kernel_size + t]
    }

    fn pad_left(&self) -> usize {
        (self.kernel_size - 1) / 2
    }

    /// Naive 5-deep scalar-loop forward pass, kept as the parity reference
    /// for the im2col/GEMM implementation. Pure: touches no caches.
    pub fn forward_reference(&self, input: &Tensor) -> Tensor {
        let (batch, len) = (input.shape()[0], input.shape()[2]);
        let pad = self.pad_left();
        let mut out = Tensor::zeros(&[batch, self.out_channels, len]);
        for b in 0..batch {
            for o in 0..self.out_channels {
                let bias = self.bias.value.data()[o];
                for n in 0..len {
                    let mut acc = bias;
                    for t in 0..self.kernel_size {
                        let src = n as isize + t as isize - pad as isize;
                        if src < 0 || src >= len as isize {
                            continue;
                        }
                        for i in 0..self.in_channels {
                            acc += self.w(o, i, t) * input.at3(b, i, src as usize);
                        }
                    }
                    out.set3(b, o, n, acc);
                }
            }
        }
        out
    }

    /// Naive scalar-loop backward pass, kept as the parity reference. Pure:
    /// returns `(grad_input, grad_weight, grad_bias)` without touching the
    /// layer's accumulators.
    pub fn backward_reference(
        &self,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> (Tensor, Tensor, Tensor) {
        let (batch, len) = (input.shape()[0], input.shape()[2]);
        let pad = self.pad_left();
        let mut grad_input = Tensor::zeros(&[batch, self.in_channels, len]);
        let mut grad_weight =
            Tensor::zeros(&[self.out_channels, self.in_channels, self.kernel_size]);
        let mut grad_bias = Tensor::zeros(&[self.out_channels]);
        for b in 0..batch {
            for o in 0..self.out_channels {
                for n in 0..len {
                    let g = grad_output.at3(b, o, n);
                    if g == 0.0 {
                        continue;
                    }
                    grad_bias.data_mut()[o] += g;
                    for t in 0..self.kernel_size {
                        let src = n as isize + t as isize - pad as isize;
                        if src < 0 || src >= len as isize {
                            continue;
                        }
                        let src = src as usize;
                        for i in 0..self.in_channels {
                            let w_idx = (o * self.in_channels + i) * self.kernel_size + t;
                            grad_weight.data_mut()[w_idx] += g * input.at3(b, i, src);
                            grad_input.add3(b, i, src, g * self.weight.value.data()[w_idx]);
                        }
                    }
                }
            }
        }
        (grad_input, grad_weight, grad_bias)
    }
}

impl Layer for Conv1d {
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        assert_eq!(input.shape().len(), 3, "Conv1d expects a 3-D input [B, C, N]");
        assert_eq!(input.shape()[1], self.in_channels, "Conv1d channel mismatch");
        let (batch, len) = (input.shape()[0], input.shape()[2]);
        let (in_c, out_c, k) = (self.in_channels, self.out_channels, self.kernel_size);
        let ck = in_c * k;
        let pad = self.pad_left();
        let mut out = ws.uninit_tensor(&[batch, out_c, len]);
        let x = input.data();
        let bias = self.bias.value.data();
        // Pack the `[out_c, ck]` weight block into MR-row strips once per
        // call; every batch item's GEMM then runs the register-tiled kernel
        // against the same pack (one pass over the weights, amortised to
        // noise across the batch).
        matmul::pack_lhs(&mut ws.pack, self.weight.value.data(), out_c, ck);
        let flops = 2 * batch * out_c * ck * len;
        let threads = if batch == 1 {
            1
        } else {
            parallel::thread_count_for(batch, flops, CONV_PAR_MIN_FLOPS)
        };
        if threads <= 1 {
            // Sequential over the batch: reuse the workspace im2col buffer
            // across items (and across layers of the whole pass). A single
            // window additionally parallelises inside the GEMM.
            let pack = &ws.pack;
            let col = &mut ws.col;
            for (b, out_b) in out.data_mut().chunks_mut(out_c * len).enumerate() {
                im2col(col, &x[b * in_c * len..(b + 1) * in_c * len], in_c, len, k, pad);
                for (oc, out_row) in out_b.chunks_mut(len).enumerate() {
                    out_row.fill(bias[oc]);
                }
                if batch == 1 {
                    matmul::matmul_packed_lhs_par(out_b, pack, col, out_c, ck, len);
                } else {
                    matmul::matmul_packed_lhs(out_b, pack, col, out_c, ck, len);
                }
            }
        } else {
            let pack = &ws.pack;
            parallel::for_each_item_mut(out.data_mut(), out_c * len, threads, |b, out_b| {
                COL_BUF.with_borrow_mut(|col| {
                    im2col(col, &x[b * in_c * len..(b + 1) * in_c * len], in_c, len, k, pad);
                    for (oc, out_row) in out_b.chunks_mut(len).enumerate() {
                        out_row.fill(bias[oc]);
                    }
                    matmul::matmul_packed_lhs(out_b, pack, col, out_c, ck, len);
                });
            });
        }
        if training {
            ws.push(LayerCache::Input(input.clone()));
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, ws: &mut Workspace) -> Tensor {
        let input = match ws.pop("Conv1d") {
            LayerCache::Input(input) => input,
            other => cache_mismatch("Conv1d", &other),
        };
        let (batch, len) = (input.shape()[0], input.shape()[2]);
        let (in_c, out_c, k) = (self.in_channels, self.out_channels, self.kernel_size);
        let ck = in_c * k;
        let pad = self.pad_left();
        let mut grad_input = Tensor::zeros(&[batch, in_c, len]);
        let col = &mut ws.col;
        let dcol = &mut ws.dcol;
        dcol.resize(ck * len, 0.0);
        let w = self.weight.value.data();
        for b in 0..batch {
            let g_b = &grad_output.data()[b * out_c * len..(b + 1) * out_c * len];
            let x_b = &input.data()[b * in_c * len..(b + 1) * in_c * len];
            im2col(col, x_b, in_c, len, k, pad);
            // db += row sums of dY
            let grad_bias = self.bias.grad.data_mut();
            for (oc, g_row) in g_b.chunks(len).enumerate() {
                grad_bias[oc] += g_row.iter().sum::<f32>();
            }
            // dW += dY · colᵀ
            matmul::matmul_a_bt(self.weight.grad.data_mut(), g_b, col, out_c, len, ck);
            // dcol = Wᵀ · dY, then scatter back onto the input gradient.
            dcol[..ck * len].fill(0.0);
            matmul::matmul_at_b(&mut dcol[..ck * len], w, g_b, out_c, ck, len);
            col2im_add(
                &mut grad_input.data_mut()[b * in_c * len..(b + 1) * in_c * len],
                &dcol[..ck * len],
                in_c,
                len,
                k,
                pad,
            );
        }
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

// ---------------------------------------------------------------------------
// BatchNorm1d
// ---------------------------------------------------------------------------

/// Batch normalisation over `[B, C, N]` tensors (per-channel statistics over
/// the batch and temporal dimensions), as used after every convolution in the
/// paper's network.
///
/// `forward` takes `&self`, so the running statistics cannot be advanced
/// there; a training forward caches the batch mean/variance in the workspace
/// and **`backward` commits them** to the running statistics (backward is the
/// only `&mut self` phase of a training step). A training forward without a
/// matching backward therefore leaves the running statistics untouched.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    channels: usize,
}

impl BatchNorm1d {
    /// Creates a batch-normalisation layer for `channels` channels.
    pub fn new(channels: usize) -> Self {
        let mut gamma = Tensor::zeros(&[channels]);
        gamma.fill(1.0);
        Self {
            gamma: Param::new(gamma),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The per-channel affine transform this layer applies at *inference*
    /// (`y = scale · x + shift` from the running statistics) — the fold the
    /// quantised layers absorb into a preceding convolution's per-channel
    /// scales and bias.
    pub fn inference_affine(&self) -> (Vec<f32>, Vec<f32>) {
        let mut scale = vec![0.0f32; self.channels];
        let mut shift = vec![0.0f32; self.channels];
        for c in 0..self.channels {
            let inv = 1.0 / (self.running_var[c] + self.eps).sqrt();
            scale[c] = self.gamma.value.data()[c] * inv;
            shift[c] = self.beta.value.data()[c] - self.running_mean[c] * scale[c];
        }
        (scale, shift)
    }

    #[inline]
    fn channel_slice(data: &[f32], b: usize, c: usize, channels: usize, len: usize) -> &[f32] {
        &data[(b * channels + c) * len..(b * channels + c + 1) * len]
    }
}

impl Layer for BatchNorm1d {
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        assert_eq!(input.shape().len(), 3, "BatchNorm1d expects a 3-D input");
        assert_eq!(input.shape()[1], self.channels, "BatchNorm1d channel mismatch");
        let (batch, len) = (input.shape()[0], input.shape()[2]);
        let channels = self.channels;
        let m = (batch * len) as f32;
        let x = input.data();

        // Per-channel statistics over contiguous [b, c] slices.
        let mut mean_c = vec![0.0f32; channels];
        let mut var_c = vec![0.0f32; channels];
        let mut std_inv = vec![0.0f32; channels];
        for c in 0..channels {
            let (mean, var) = if training {
                let mut sum = 0.0f64;
                for b in 0..batch {
                    for &v in Self::channel_slice(x, b, c, channels, len) {
                        sum += v as f64;
                    }
                }
                let mean = (sum / m as f64) as f32;
                let mut var_sum = 0.0f64;
                for b in 0..batch {
                    for &v in Self::channel_slice(x, b, c, channels, len) {
                        var_sum += ((v - mean) as f64).powi(2);
                    }
                }
                (mean, (var_sum / m as f64) as f32)
            } else {
                (self.running_mean[c], self.running_var[c])
            };
            mean_c[c] = mean;
            var_c[c] = var;
            std_inv[c] = 1.0 / (var + self.eps).sqrt();
        }

        let mut out = ws.uninit_tensor(input.shape());
        if training {
            let mut x_hat = Tensor::zeros(input.shape());
            {
                let out_data = out.data_mut();
                let hat_data = x_hat.data_mut();
                for b in 0..batch {
                    for c in 0..channels {
                        let base = (b * channels + c) * len;
                        let g = self.gamma.value.data()[c];
                        let be = self.beta.value.data()[c];
                        let (mean, inv) = (mean_c[c], std_inv[c]);
                        for j in base..base + len {
                            let xh = (x[j] - mean) * inv;
                            hat_data[j] = xh;
                            out_data[j] = g * xh + be;
                        }
                    }
                }
            }
            ws.push(LayerCache::Bn { x_hat, std_inv, mean: mean_c, var: var_c });
        } else {
            // Inference: fold (mean, inv, gamma, beta) into a single affine
            // transform per channel and skip the cache.
            let out_data = out.data_mut();
            for b in 0..batch {
                for c in 0..channels {
                    let base = (b * channels + c) * len;
                    let scale = self.gamma.value.data()[c] * std_inv[c];
                    let shift = self.beta.value.data()[c] - mean_c[c] * scale;
                    for (dst, &v) in out_data[base..base + len].iter_mut().zip(&x[base..base + len])
                    {
                        *dst = v * scale + shift;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, ws: &mut Workspace) -> Tensor {
        let (x_hat, std_inv, mean, var) = match ws.pop("BatchNorm1d") {
            LayerCache::Bn { x_hat, std_inv, mean, var } => (x_hat, std_inv, mean, var),
            other => cache_mismatch("BatchNorm1d", &other),
        };
        // Commit the batch statistics of the matching forward to the running
        // statistics (deferred from forward, which is `&self`).
        for c in 0..self.channels {
            self.running_mean[c] =
                (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
            self.running_var[c] =
                (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
        }
        let (batch, len) = (grad_output.shape()[0], grad_output.shape()[2]);
        let channels = self.channels;
        let m = (batch * len) as f32;
        let dy = grad_output.data();
        let hat = x_hat.data();
        let mut grad_input = Tensor::zeros(grad_output.shape());
        let gi = grad_input.data_mut();
        for (c, &inv) in std_inv.iter().enumerate() {
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for b in 0..batch {
                let base = (b * channels + c) * len;
                for j in base..base + len {
                    sum_dy += dy[j] as f64;
                    sum_dy_xhat += dy[j] as f64 * hat[j] as f64;
                }
            }
            self.beta.grad.data_mut()[c] += sum_dy as f32;
            self.gamma.grad.data_mut()[c] += sum_dy_xhat as f32;
            let g = self.gamma.value.data()[c];
            let mean_dy = sum_dy as f32 / m;
            let mean_dy_xhat = sum_dy_xhat as f32 / m;
            for b in 0..batch {
                let base = (b * channels + c) * len;
                for j in base..base + len {
                    gi[j] = g * inv * (dy[j] - mean_dy - hat[j] * mean_dy_xhat);
                }
            }
        }
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn buffers(&self) -> Vec<&[f32]> {
        vec![&self.running_mean, &self.running_var]
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        vec![&mut self.running_mean, &mut self.running_var]
    }
}

// ---------------------------------------------------------------------------
// Global average pooling
// ---------------------------------------------------------------------------

/// Global average pooling over the temporal dimension: `[B, C, N] → [B, C]`.
///
/// This is the layer that lets the paper use a different window length at
/// inference time (`N_inf`) than at training time (`N_train`).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct GlobalAvgPool1d;

impl GlobalAvgPool1d {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self
    }
}

impl Layer for GlobalAvgPool1d {
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        assert_eq!(input.shape().len(), 3, "GlobalAvgPool1d expects a 3-D input");
        let (batch, channels, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let mut out = ws.uninit_tensor(&[batch, channels]);
        let inv_len = 1.0 / len as f32;
        for (dst, row) in out.data_mut().iter_mut().zip(input.data().chunks(len)) {
            *dst = row.iter().sum::<f32>() * inv_len;
        }
        if training {
            ws.push(LayerCache::Shape(input.shape().to_vec()));
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, ws: &mut Workspace) -> Tensor {
        let shape = match ws.pop("GlobalAvgPool1d") {
            LayerCache::Shape(shape) => shape,
            other => cache_mismatch("GlobalAvgPool1d", &other),
        };
        let len = shape[2];
        let mut grad_input = Tensor::zeros(&shape);
        for (row, &g) in grad_input.data_mut().chunks_mut(len).zip(grad_output.data().iter()) {
            row.fill(g / len as f32);
        }
        grad_input
    }
}

// ---------------------------------------------------------------------------
// Max pooling
// ---------------------------------------------------------------------------

/// 1-D max pooling: `[B, C, N] → [B, C, (N - k)/s + 1]` (valid windows only).
///
/// Operates on contiguous channel slices; during training the flat arg-max
/// index of every window is cached so `backward` is a single scatter pass.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MaxPool1d {
    kernel_size: usize,
    stride: usize,
}

impl MaxPool1d {
    /// Creates a max-pooling layer with the given window and stride.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_size` or `stride` is zero.
    pub fn new(kernel_size: usize, stride: usize) -> Self {
        assert!(kernel_size > 0, "kernel size must be non-zero");
        assert!(stride > 0, "stride must be non-zero");
        Self { kernel_size, stride }
    }

    /// Pooling window size.
    pub fn kernel_size(&self) -> usize {
        self.kernel_size
    }

    /// Pooling stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Output length for an input of `len` samples.
    pub fn output_len(&self, len: usize) -> usize {
        if len < self.kernel_size {
            0
        } else {
            (len - self.kernel_size) / self.stride + 1
        }
    }
}

impl Layer for MaxPool1d {
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        assert_eq!(input.shape().len(), 3, "MaxPool1d expects a 3-D input [B, C, N]");
        let (batch, channels, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let out_len = self.output_len(len);
        assert!(out_len > 0, "MaxPool1d input shorter than the pooling window");
        let mut out = ws.uninit_tensor(&[batch, channels, out_len]);
        let mut argmax =
            if training { vec![0usize; batch * channels * out_len] } else { Vec::new() };
        let x = input.data();
        for (bc, out_row) in out.data_mut().chunks_mut(out_len).enumerate() {
            let x_row = &x[bc * len..(bc + 1) * len];
            for (j, dst) in out_row.iter_mut().enumerate() {
                let start = j * self.stride;
                let window = &x_row[start..start + self.kernel_size];
                let mut best = 0usize;
                let mut best_v = window[0];
                for (idx, &v) in window.iter().enumerate().skip(1) {
                    if v > best_v {
                        best = idx;
                        best_v = v;
                    }
                }
                *dst = best_v;
                if training {
                    argmax[bc * out_len + j] = bc * len + start + best;
                }
            }
        }
        if training {
            ws.push(LayerCache::Argmax { argmax, input_shape: input.shape().to_vec() });
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, ws: &mut Workspace) -> Tensor {
        let (argmax, input_shape) = match ws.pop("MaxPool1d") {
            LayerCache::Argmax { argmax, input_shape } => (argmax, input_shape),
            other => cache_mismatch("MaxPool1d", &other),
        };
        let mut grad_input = Tensor::zeros(&input_shape);
        let gi = grad_input.data_mut();
        for (&idx, &g) in argmax.iter().zip(grad_output.data().iter()) {
            gi[idx] += g;
        }
        grad_input
    }
}

// ---------------------------------------------------------------------------
// Residual block
// ---------------------------------------------------------------------------

/// Residual block of the paper's network: two (Conv1d → BatchNorm → ReLU)
/// stages whose output is summed element-wise with a shortcut connection,
/// followed by a final ReLU. When the channel count changes, the shortcut is
/// a 1×1 convolution followed by batch normalisation (the standard ResNet
/// projection shortcut).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResidualBlock1d {
    conv1: Conv1d,
    bn1: BatchNorm1d,
    relu1: Relu,
    conv2: Conv1d,
    bn2: BatchNorm1d,
    projection: Option<(Conv1d, BatchNorm1d)>,
    relu_out: Relu,
}

impl ResidualBlock1d {
    /// Creates a residual block mapping `in_channels` to `out_channels` with
    /// the given kernel size.
    pub fn new(in_channels: usize, out_channels: usize, kernel_size: usize, seed: u64) -> Self {
        let projection = if in_channels != out_channels {
            Some((
                Conv1d::new(in_channels, out_channels, 1, seed.wrapping_add(77)),
                BatchNorm1d::new(out_channels),
            ))
        } else {
            None
        };
        Self {
            conv1: Conv1d::new(in_channels, out_channels, kernel_size, seed),
            bn1: BatchNorm1d::new(out_channels),
            relu1: Relu::new(),
            conv2: Conv1d::new(out_channels, out_channels, kernel_size, seed.wrapping_add(1)),
            bn2: BatchNorm1d::new(out_channels),
            projection,
            relu_out: Relu::new(),
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.conv2.out_channels()
    }

    /// Shared access to the block's sub-layers, in forward order:
    /// `(conv1, bn1, conv2, bn2, projection)`. Used by the quantised layer
    /// variants to mirror the block structure.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(
        &self,
    ) -> (&Conv1d, &BatchNorm1d, &Conv1d, &BatchNorm1d, Option<(&Conv1d, &BatchNorm1d)>) {
        (
            &self.conv1,
            &self.bn1,
            &self.conv2,
            &self.bn2,
            self.projection.as_ref().map(|(c, b)| (c, b)),
        )
    }

    /// Inference forward pass routing every convolution through
    /// [`Conv1d::forward_reference`]. The non-conv layers are elementwise in
    /// both implementations, so this reproduces the pre-GEMM baseline cost
    /// profile for throughput benchmarks and parity tests.
    pub fn forward_reference(&self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut main = self.conv1.forward_reference(input);
        main = self.bn1.forward(&main, ws, false);
        main = self.relu1.forward(&main, ws, false);
        main = self.conv2.forward_reference(&main);
        main = self.bn2.forward(&main, ws, false);
        let shortcut = match self.projection.as_ref() {
            Some((conv, bn)) => {
                let s = conv.forward_reference(input);
                bn.forward(&s, ws, false)
            }
            None => input.clone(),
        };
        let mut sum = main;
        sum.add_assign(&shortcut);
        self.relu_out.forward(&sum, ws, false)
    }
}

impl Layer for ResidualBlock1d {
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        // Dead intermediates go back to the workspace arena as soon as the
        // next layer has consumed them (`forward_consuming`), so a
        // steady-state pass allocates nothing; the identity shortcut adds
        // `input` directly instead of cloning it.
        let x = self.conv1.forward(input, ws, training);
        let x = forward_consuming(&self.bn1, x, ws, training);
        let x = forward_consuming(&self.relu1, x, ws, training);
        let x = forward_consuming(&self.conv2, x, ws, training);
        let mut sum = forward_consuming(&self.bn2, x, ws, training);
        match self.projection.as_ref() {
            Some((conv, bn)) => {
                let s = conv.forward(input, ws, training);
                let s_bn = forward_consuming(bn, s, ws, training);
                sum.add_assign(&s_bn);
                ws.recycle(s_bn);
            }
            None => sum.add_assign(input),
        }
        forward_consuming(&self.relu_out, sum, ws, training)
    }

    fn backward(&mut self, grad_output: &Tensor, ws: &mut Workspace) -> Tensor {
        // Pop order must be the exact reverse of the forward push order:
        // relu_out, [projection bn, projection conv], bn2, conv2, relu1, bn1,
        // conv1 — so the shortcut branch unwinds before the main branch.
        let grad_sum = self.relu_out.backward(grad_output, ws);
        let grad_shortcut_input = match self.projection.as_mut() {
            Some((conv, bn)) => {
                let g = bn.backward(&grad_sum, ws);
                conv.backward(&g, ws)
            }
            None => grad_sum.clone(),
        };
        let g = self.bn2.backward(&grad_sum, ws);
        let g = self.conv2.backward(&g, ws);
        let g = self.relu1.backward(&g, ws);
        let g = self.bn1.backward(&g, ws);
        let grad_main_input = self.conv1.backward(&g, ws);
        grad_main_input.add(&grad_shortcut_input)
    }

    fn params(&self) -> Vec<&Param> {
        let mut params = Vec::new();
        params.extend(self.conv1.params());
        params.extend(self.bn1.params());
        params.extend(self.conv2.params());
        params.extend(self.bn2.params());
        if let Some((conv, bn)) = self.projection.as_ref() {
            params.extend(conv.params());
            params.extend(bn.params());
        }
        params
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.conv1.params_mut());
        params.extend(self.bn1.params_mut());
        params.extend(self.conv2.params_mut());
        params.extend(self.bn2.params_mut());
        if let Some((conv, bn)) = self.projection.as_mut() {
            params.extend(conv.params_mut());
            params.extend(bn.params_mut());
        }
        params
    }

    fn buffers(&self) -> Vec<&[f32]> {
        let mut buffers = Vec::new();
        buffers.extend(self.bn1.buffers());
        buffers.extend(self.bn2.buffers());
        if let Some((_, bn)) = self.projection.as_ref() {
            buffers.extend(bn.buffers());
        }
        buffers
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut buffers = Vec::new();
        buffers.extend(self.bn1.buffers_mut());
        buffers.extend(self.bn2.buffers_mut());
        if let Some((_, bn)) = self.projection.as_mut() {
            buffers.extend(bn.buffers_mut());
        }
        buffers
    }
}

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------

/// A simple sequential container of boxed layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential model from a list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers in the container.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        let mut layers = self.layers.iter();
        let Some(first) = layers.next() else {
            return input.clone();
        };
        let mut x = first.forward(input, ws, training);
        for layer in layers {
            x = forward_consuming(layer.as_ref(), x, ws, training);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g, ws);
        }
        g
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn buffers(&self) -> Vec<&[f32]> {
        self.layers.iter().flat_map(|l| l.buffers()).collect()
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        self.layers.iter_mut().flat_map(|l| l.buffers_mut()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check of a layer's input gradient on a tiny random
    /// problem. `probe_training` selects the mode of the finite-difference
    /// probes: layers with batch statistics (BatchNorm, residual blocks) must
    /// probe in training mode because those statistics are part of the
    /// function being differentiated; stateless layers probe in inference
    /// mode so the probes push no caches.
    fn gradcheck_mode<L: Layer>(
        layer: &mut L,
        input_shape: &[usize],
        tolerance: f32,
        probe_training: bool,
    ) {
        let mut ws = Workspace::new();
        let input = init::uniform(input_shape, -1.0, 1.0, 99);
        // Scalar objective: weighted sum of outputs (weights fixed).
        let out = layer.forward(&input, &mut ws, true);
        ws.clear();
        let obj_weights = init::uniform(out.shape(), -1.0, 1.0, 123);
        let objective = |out: &Tensor| -> f32 {
            out.data().iter().zip(obj_weights.data().iter()).map(|(a, b)| a * b).sum()
        };
        // Analytic gradients.
        layer.zero_grad();
        let _ = layer.forward(&input, &mut ws, true);
        let grad_input = layer.backward(&obj_weights, &mut ws);
        assert_eq!(ws.cache_depth(), 0, "backward must consume every cache");
        // Numeric input gradient (spot-check a handful of coordinates).
        let eps = 1e-2f32;
        let check_idx: Vec<usize> =
            (0..input.len()).step_by((input.len() / 7).max(1)).take(8).collect();
        for &idx in &check_idx {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let f_plus = objective(&layer.forward(&plus, &mut ws, probe_training));
            let f_minus = objective(&layer.forward(&minus, &mut ws, probe_training));
            ws.clear();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grad_input.data()[idx];
            assert!(
                (numeric - analytic).abs() < tolerance * (1.0 + numeric.abs()),
                "input grad mismatch at {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    fn gradcheck<L: Layer>(layer: &mut L, input_shape: &[usize], tolerance: f32) {
        gradcheck_mode(layer, input_shape, tolerance, false);
    }

    fn gradcheck_training_probes<L: Layer>(layer: &mut L, input_shape: &[usize], tolerance: f32) {
        gradcheck_mode(layer, input_shape, tolerance, true);
    }

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let mut ws = Workspace::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -3.0], &[1, 4]);
        let y = relu.forward(&x, &mut ws, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = relu.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 4]), &mut ws);
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn linear_known_values() {
        let mut lin = Linear::new(2, 1, 1);
        let mut ws = Workspace::new();
        // Overwrite weights for a deterministic check: y = 2*x0 - x1 + 0.5
        lin.weight.value = Tensor::from_vec(vec![2.0, -1.0], &[1, 2]);
        lin.bias.value = Tensor::from_vec(vec![0.5], &[1]);
        let x = Tensor::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        let y = lin.forward(&x, &mut ws, true);
        assert_eq!(y.data(), &[0.5, -0.5]);
        let g = lin.backward(&Tensor::from_rows(&[vec![1.0], vec![1.0]]), &mut ws);
        // dL/dx = w for unit output grads.
        assert_eq!(g.data(), &[2.0, -1.0, 2.0, -1.0]);
        // dL/dw = sum of inputs, dL/db = 2.
        assert_eq!(lin.weight.grad.data(), &[1.0, 3.0]);
        assert_eq!(lin.bias.grad.data(), &[2.0]);
    }

    #[test]
    fn linear_gradcheck() {
        let mut lin = Linear::new(5, 3, 3);
        gradcheck(&mut lin, &[4, 5], 1e-2);
    }

    #[test]
    fn linear_matches_reference() {
        let lin = Linear::new(7, 4, 9);
        let mut ws = Workspace::new();
        let x = init::uniform(&[5, 7], -1.0, 1.0, 21);
        let fast = lin.forward(&x, &mut ws, false);
        let slow = lin.forward_reference(&x);
        for (a, b) in fast.data().iter().zip(slow.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn conv1d_identity_kernel() {
        let mut conv = Conv1d::new(1, 1, 1, 1);
        let mut ws = Workspace::new();
        conv.weight.value = Tensor::from_vec(vec![1.0], &[1, 1, 1]);
        conv.bias.value = Tensor::from_vec(vec![0.0], &[1]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let y = conv.forward(&x, &mut ws, true);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv1d_same_padding_keeps_length() {
        let mut ws = Workspace::new();
        for k in [1usize, 3, 4, 7, 8] {
            let conv = Conv1d::new(2, 3, k, 5);
            let x = init::uniform(&[2, 2, 10], -1.0, 1.0, 7);
            let y = conv.forward(&x, &mut ws, false);
            assert_eq!(y.shape(), &[2, 3, 10], "kernel {k}");
        }
    }

    #[test]
    fn conv1d_moving_average_kernel() {
        let mut conv = Conv1d::new(1, 1, 3, 1);
        let mut ws = Workspace::new();
        conv.weight.value = Tensor::from_vec(vec![1.0 / 3.0; 3], &[1, 1, 3]);
        conv.bias.value = Tensor::from_vec(vec![0.0], &[1]);
        let x = Tensor::from_vec(vec![3.0, 3.0, 3.0, 3.0, 3.0], &[1, 1, 5]);
        let y = conv.forward(&x, &mut ws, false);
        // Interior samples see the full window, borders see 2/3 of it.
        assert!((y.at3(0, 0, 2) - 3.0).abs() < 1e-6);
        assert!((y.at3(0, 0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn conv1d_gradcheck() {
        let mut conv = Conv1d::new(2, 2, 3, 11);
        gradcheck(&mut conv, &[2, 2, 6], 2e-2);
    }

    #[test]
    fn conv1d_matches_reference() {
        let mut ws = Workspace::new();
        for &(in_c, out_c, k, len, batch) in
            &[(1usize, 2usize, 3usize, 16usize, 2usize), (2, 3, 4, 9, 3), (3, 2, 7, 32, 1)]
        {
            let conv = Conv1d::new(in_c, out_c, k, 13);
            let x = init::uniform(&[batch, in_c, len], -1.0, 1.0, 17);
            let fast = conv.forward(&x, &mut ws, false);
            let slow = conv.forward_reference(&x);
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                assert!((a - b).abs() < 1e-5, "in_c={in_c} out_c={out_c} k={k}");
            }
        }
    }

    #[test]
    fn conv1d_inference_skips_cache() {
        let conv = Conv1d::new(1, 2, 3, 3);
        let mut ws = Workspace::new();
        let x = Tensor::zeros(&[1, 1, 8]);
        let _ = conv.forward(&x, &mut ws, false);
        assert_eq!(ws.cache_depth(), 0, "inference must not record a cache");
        let _ = conv.forward(&x, &mut ws, true);
        assert_eq!(ws.cache_depth(), 1, "training must record a cache");
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn conv1d_backward_after_inference_panics() {
        let mut conv = Conv1d::new(1, 1, 3, 3);
        let mut ws = Workspace::new();
        let x = Tensor::zeros(&[1, 1, 8]);
        let y = conv.forward(&x, &mut ws, false);
        let _ = conv.backward(&y, &mut ws);
    }

    #[test]
    fn batchnorm_normalises_in_training() {
        let bn = BatchNorm1d::new(1);
        let mut ws = Workspace::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 1, 3]);
        let y = bn.forward(&x, &mut ws, true);
        let mean: f32 = y.data().iter().sum::<f32>() / 6.0;
        let var: f32 = y.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 6.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let mut ws = Workspace::new();
        // Run several training forward/backward pairs to populate the running
        // statistics (they are committed during backward).
        for seed in 0..20u64 {
            let x = init::uniform(&[4, 1, 8], 4.0, 6.0, seed);
            let y = bn.forward(&x, &mut ws, true);
            let _ = bn.backward(&Tensor::zeros(y.shape()), &mut ws);
        }
        // In eval mode a constant input centred on the running mean maps near zero.
        let x = Tensor::from_vec(vec![5.0; 8], &[1, 1, 8]);
        let y = bn.forward(&x, &mut ws, false);
        assert!(y.data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn batchnorm_stats_commit_in_backward_not_forward() {
        let mut bn = BatchNorm1d::new(1);
        let mut ws = Workspace::new();
        let before = bn.buffers().iter().map(|b| b.to_vec()).collect::<Vec<_>>();
        let x = init::uniform(&[2, 1, 8], 4.0, 6.0, 1);
        let y = bn.forward(&x, &mut ws, true);
        assert_eq!(
            bn.buffers().iter().map(|b| b.to_vec()).collect::<Vec<_>>(),
            before,
            "a training forward alone must not advance the running statistics"
        );
        let _ = bn.backward(&Tensor::zeros(y.shape()), &mut ws);
        assert_ne!(
            bn.buffers().iter().map(|b| b.to_vec()).collect::<Vec<_>>(),
            before,
            "backward must commit the batch statistics"
        );
    }

    #[test]
    fn batchnorm_gradcheck() {
        let mut bn = BatchNorm1d::new(2);
        gradcheck_training_probes(&mut bn, &[3, 2, 4], 3e-2);
    }

    #[test]
    fn global_avg_pool_values_and_shape() {
        let mut pool = GlobalAvgPool1d::new();
        let mut ws = Workspace::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 4]);
        let y = pool.forward(&x, &mut ws, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[4.0, 2.0]);
        let g = pool.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]), &mut ws);
        assert_eq!(g.shape(), &[1, 2, 4]);
        assert_eq!(g.at3(0, 0, 0), 1.0);
        assert_eq!(g.at3(0, 1, 3), 2.0);
    }

    #[test]
    fn max_pool_values_and_backward() {
        let mut pool = MaxPool1d::new(2, 2);
        let mut ws = Workspace::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 2.0, -1.0, 0.0, 5.0, 4.0], &[1, 2, 4]);
        let y = pool.forward(&x, &mut ws, true);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), &[3.0, 2.0, 0.0, 5.0]);
        let g = pool.backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]), &mut ws);
        // Ties resolve to the first index (sample 2 of channel 0).
        assert_eq!(g.data(), &[0.0, 1.0, 2.0, 0.0, 0.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn max_pool_overlapping_windows() {
        let pool = MaxPool1d::new(3, 1);
        let mut ws = Workspace::new();
        let x = Tensor::from_vec(vec![0.0, 2.0, 1.0, 4.0, 3.0], &[1, 1, 5]);
        let y = pool.forward(&x, &mut ws, false);
        assert_eq!(y.data(), &[2.0, 4.0, 4.0]);
        assert_eq!(pool.output_len(5), 3);
        assert_eq!(pool.output_len(2), 0);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn max_pool_backward_after_inference_panics() {
        let mut pool = MaxPool1d::new(2, 2);
        let mut ws = Workspace::new();
        let x = Tensor::zeros(&[1, 1, 4]);
        let y = pool.forward(&x, &mut ws, false);
        let _ = pool.backward(&y, &mut ws);
    }

    #[test]
    fn residual_block_shapes_and_projection() {
        let mut ws = Workspace::new();
        let same = ResidualBlock1d::new(4, 4, 3, 1);
        let x = init::uniform(&[2, 4, 6], -1.0, 1.0, 3);
        let y = same.forward(&x, &mut ws, true);
        ws.clear();
        assert_eq!(y.shape(), &[2, 4, 6]);

        let grow = ResidualBlock1d::new(4, 8, 3, 2);
        let y = grow.forward(&x, &mut ws, true);
        ws.clear();
        assert_eq!(y.shape(), &[2, 8, 6]);
        assert_eq!(grow.out_channels(), 8);
        // Projection shortcut adds parameters.
        assert!(grow.param_count() > same.param_count());
    }

    #[test]
    fn residual_block_gradcheck() {
        let mut block = ResidualBlock1d::new(2, 3, 3, 17);
        gradcheck_training_probes(&mut block, &[2, 2, 5], 5e-2);
    }

    #[test]
    fn residual_block_backward_consumes_all_caches() {
        let mut block = ResidualBlock1d::new(2, 4, 3, 9);
        let mut ws = Workspace::new();
        let x = init::uniform(&[2, 2, 8], -1.0, 1.0, 5);
        let y = block.forward(&x, &mut ws, true);
        assert!(ws.cache_depth() > 0);
        let g = block.backward(&Tensor::zeros(y.shape()), &mut ws);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(ws.cache_depth(), 0, "backward must pop exactly what forward pushed");
    }

    #[test]
    fn sequential_composes() {
        let mut model = Sequential::new(vec![
            Box::new(Linear::new(3, 4, 1)),
            Box::new(Relu::new()),
            Box::new(Linear::new(4, 2, 2)),
        ]);
        let mut ws = Workspace::new();
        let x = init::uniform(&[5, 3], -1.0, 1.0, 9);
        let y = model.forward(&x, &mut ws, true);
        assert_eq!(y.shape(), &[5, 2]);
        model.zero_grad();
        let g = model.backward(&Tensor::zeros(&[5, 2]), &mut ws);
        assert_eq!(g.shape(), &[5, 3]);
        assert_eq!(model.params_mut().len(), 4);
        assert_eq!(model.params().len(), 4);
        assert!(!model.is_empty());
        assert_eq!(model.len(), 3);
    }

    #[test]
    fn shared_model_scores_identically_across_threads() {
        // The point of the `&self` redesign: one model instance, many
        // workspaces, no weight clones — identical outputs on every thread.
        let model = Sequential::new(vec![
            Box::new(Linear::new(4, 8, 1)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 2, 2)),
        ]);
        let x = init::uniform(&[3, 4], -1.0, 1.0, 11);
        let mut ws = Workspace::new();
        let expected = model.forward(&x, &mut ws, false);
        let model_ref = &model;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let x = x.clone();
                let expected = expected.clone();
                scope.spawn(move || {
                    let mut ws = Workspace::new();
                    let y = model_ref.forward(&x, &mut ws, false);
                    assert_eq!(y.data(), expected.data());
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut lin = Linear::new(2, 2, 1);
        let mut ws = Workspace::new();
        lin.backward(&Tensor::zeros(&[1, 2]), &mut ws);
    }
}
