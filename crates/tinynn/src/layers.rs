//! Neural-network layers with analytic forward/backward passes.
//!
//! Layout conventions:
//!
//! * convolutional tensors are `[batch, channels, length]`;
//! * fully-connected tensors are `[batch, features]`.
//!
//! Every layer caches what it needs during `forward` and consumes the cache in
//! `backward`, which returns the gradient with respect to the layer input and
//! accumulates parameter gradients into the layer's [`Param`]s.

use serde::{Deserialize, Serialize};

use crate::init;
use crate::param::Param;
use crate::tensor::Tensor;

/// A differentiable layer.
pub trait Layer: Send {
    /// Computes the layer output. `training` selects batch statistics vs.
    /// running statistics in normalisation layers.
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor;

    /// Back-propagates `grad_output`, returning the gradient with respect to
    /// the layer input and accumulating parameter gradients.
    ///
    /// Must be called after a `forward` pass (the layer uses its cache).
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable access to the layer's trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Zeroes every parameter gradient.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Rectified linear unit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        self.mask = input.data().iter().map(|&v| v > 0.0).collect();
        let data = input.data().iter().map(|&v| v.max(0.0)).collect();
        Tensor::from_vec(data, input.shape())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(grad_output.len(), self.mask.len(), "backward called before forward");
        let data = grad_output
            .data()
            .iter()
            .zip(self.mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.shape())
    }
}

// ---------------------------------------------------------------------------
// Linear (fully connected)
// ---------------------------------------------------------------------------

/// Fully connected layer: `y = x Wᵀ + b` with `x: [B, in]`, `W: [out, in]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cache_input: Option<Tensor>,
}

impl Linear {
    /// Creates a fully connected layer with He-uniform initialisation.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Self {
            weight: Param::new(init::he_uniform(&[out_features, in_features], in_features, seed)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cache_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Linear expects a 2-D input");
        assert_eq!(input.shape()[1], self.in_features, "Linear input feature mismatch");
        let batch = input.shape()[0];
        let mut out = Tensor::zeros(&[batch, self.out_features]);
        for b in 0..batch {
            for o in 0..self.out_features {
                let mut acc = self.bias.value.data()[o];
                for i in 0..self.in_features {
                    acc += input.at2(b, i) * self.weight.value.at2(o, i);
                }
                out.set2(b, o, acc);
            }
        }
        self.cache_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cache_input.as_ref().expect("backward called before forward");
        let batch = input.shape()[0];
        let mut grad_input = Tensor::zeros(&[batch, self.in_features]);
        for b in 0..batch {
            for o in 0..self.out_features {
                let g = grad_output.at2(b, o);
                self.bias.grad.data_mut()[o] += g;
                for i in 0..self.in_features {
                    let w_idx = o * self.in_features + i;
                    self.weight.grad.data_mut()[w_idx] += g * input.at2(b, i);
                    let gi = grad_input.at2(b, i) + g * self.weight.value.data()[w_idx];
                    grad_input.set2(b, i, gi);
                }
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

// ---------------------------------------------------------------------------
// Conv1d
// ---------------------------------------------------------------------------

/// 1-D convolution with stride 1 and "same" zero padding, matching the
/// convolutional layers of the paper's CNN (Figure 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    weight: Param, // [out_c, in_c, k]
    bias: Param,   // [out_c]
    in_channels: usize,
    out_channels: usize,
    kernel_size: usize,
    cache_input: Option<Tensor>,
}

impl Conv1d {
    /// Creates a convolution layer with He-uniform initialisation.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_size` is zero.
    pub fn new(in_channels: usize, out_channels: usize, kernel_size: usize, seed: u64) -> Self {
        assert!(kernel_size > 0, "kernel size must be non-zero");
        let fan_in = in_channels * kernel_size;
        Self {
            weight: Param::new(init::he_uniform(
                &[out_channels, in_channels, kernel_size],
                fan_in,
                seed,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel_size,
            cache_input: None,
        }
    }

    /// Kernel size.
    pub fn kernel_size(&self) -> usize {
        self.kernel_size
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    #[inline]
    fn w(&self, o: usize, i: usize, t: usize) -> f32 {
        self.weight.value.data()[(o * self.in_channels + i) * self.kernel_size + t]
    }

    fn pad_left(&self) -> usize {
        (self.kernel_size - 1) / 2
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(input.shape().len(), 3, "Conv1d expects a 3-D input [B, C, N]");
        assert_eq!(input.shape()[1], self.in_channels, "Conv1d channel mismatch");
        let (batch, len) = (input.shape()[0], input.shape()[2]);
        let pad = self.pad_left();
        let mut out = Tensor::zeros(&[batch, self.out_channels, len]);
        for b in 0..batch {
            for o in 0..self.out_channels {
                let bias = self.bias.value.data()[o];
                for n in 0..len {
                    let mut acc = bias;
                    for t in 0..self.kernel_size {
                        let src = n as isize + t as isize - pad as isize;
                        if src < 0 || src >= len as isize {
                            continue;
                        }
                        for i in 0..self.in_channels {
                            acc += self.w(o, i, t) * input.at3(b, i, src as usize);
                        }
                    }
                    out.set3(b, o, n, acc);
                }
            }
        }
        self.cache_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cache_input.as_ref().expect("backward called before forward").clone();
        let (batch, len) = (input.shape()[0], input.shape()[2]);
        let pad = self.pad_left();
        let mut grad_input = Tensor::zeros(&[batch, self.in_channels, len]);
        for b in 0..batch {
            for o in 0..self.out_channels {
                for n in 0..len {
                    let g = grad_output.at3(b, o, n);
                    if g == 0.0 {
                        continue;
                    }
                    self.bias.grad.data_mut()[o] += g;
                    for t in 0..self.kernel_size {
                        let src = n as isize + t as isize - pad as isize;
                        if src < 0 || src >= len as isize {
                            continue;
                        }
                        let src = src as usize;
                        for i in 0..self.in_channels {
                            let w_idx = (o * self.in_channels + i) * self.kernel_size + t;
                            self.weight.grad.data_mut()[w_idx] += g * input.at3(b, i, src);
                            grad_input.add3(b, i, src, g * self.weight.value.data()[w_idx]);
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

// ---------------------------------------------------------------------------
// BatchNorm1d
// ---------------------------------------------------------------------------

/// Batch normalisation over `[B, C, N]` tensors (per-channel statistics over
/// the batch and temporal dimensions), as used after every convolution in the
/// paper's network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BnCache {
    x_hat: Tensor,
    std_inv: Vec<f32>,
}

impl BatchNorm1d {
    /// Creates a batch-normalisation layer for `channels` channels.
    pub fn new(channels: usize) -> Self {
        let mut gamma = Tensor::zeros(&[channels]);
        gamma.fill(1.0);
        Self {
            gamma: Param::new(gamma),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        assert_eq!(input.shape().len(), 3, "BatchNorm1d expects a 3-D input");
        assert_eq!(input.shape()[1], self.channels, "BatchNorm1d channel mismatch");
        let (batch, len) = (input.shape()[0], input.shape()[2]);
        let m = (batch * len) as f32;
        let mut out = Tensor::zeros(input.shape());
        let mut x_hat = Tensor::zeros(input.shape());
        let mut std_inv = vec![0.0f32; self.channels];

        for c in 0..self.channels {
            let (mean, var) = if training {
                let mut sum = 0.0f64;
                for b in 0..batch {
                    for n in 0..len {
                        sum += input.at3(b, c, n) as f64;
                    }
                }
                let mean = (sum / m as f64) as f32;
                let mut var_sum = 0.0f64;
                for b in 0..batch {
                    for n in 0..len {
                        var_sum += ((input.at3(b, c, n) - mean) as f64).powi(2);
                    }
                }
                let var = (var_sum / m as f64) as f32;
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean;
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[c], self.running_var[c])
            };
            let inv = 1.0 / (var + self.eps).sqrt();
            std_inv[c] = inv;
            let g = self.gamma.value.data()[c];
            let be = self.beta.value.data()[c];
            for b in 0..batch {
                for n in 0..len {
                    let xh = (input.at3(b, c, n) - mean) * inv;
                    x_hat.set3(b, c, n, xh);
                    out.set3(b, c, n, g * xh + be);
                }
            }
        }
        self.cache = Some(BnCache { x_hat, std_inv });
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let (batch, len) = (grad_output.shape()[0], grad_output.shape()[2]);
        let m = (batch * len) as f32;
        let mut grad_input = Tensor::zeros(grad_output.shape());
        for c in 0..self.channels {
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for b in 0..batch {
                for n in 0..len {
                    let dy = grad_output.at3(b, c, n) as f64;
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.at3(b, c, n) as f64;
                }
            }
            self.beta.grad.data_mut()[c] += sum_dy as f32;
            self.gamma.grad.data_mut()[c] += sum_dy_xhat as f32;
            let g = self.gamma.value.data()[c];
            let inv = cache.std_inv[c];
            let mean_dy = sum_dy as f32 / m;
            let mean_dy_xhat = sum_dy_xhat as f32 / m;
            for b in 0..batch {
                for n in 0..len {
                    let dy = grad_output.at3(b, c, n);
                    let xh = cache.x_hat.at3(b, c, n);
                    grad_input.set3(b, c, n, g * inv * (dy - mean_dy - xh * mean_dy_xhat));
                }
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

// ---------------------------------------------------------------------------
// Global average pooling
// ---------------------------------------------------------------------------

/// Global average pooling over the temporal dimension: `[B, C, N] → [B, C]`.
///
/// This is the layer that lets the paper use a different window length at
/// inference time (`N_inf`) than at training time (`N_train`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GlobalAvgPool1d {
    cache_shape: Vec<usize>,
}

impl GlobalAvgPool1d {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool1d {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(input.shape().len(), 3, "GlobalAvgPool1d expects a 3-D input");
        let (batch, channels, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let mut out = Tensor::zeros(&[batch, channels]);
        for b in 0..batch {
            for c in 0..channels {
                let mut acc = 0.0f32;
                for n in 0..len {
                    acc += input.at3(b, c, n);
                }
                out.set2(b, c, acc / len as f32);
            }
        }
        self.cache_shape = input.shape().to_vec();
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.cache_shape.is_empty(), "backward called before forward");
        let (batch, channels, len) =
            (self.cache_shape[0], self.cache_shape[1], self.cache_shape[2]);
        let mut grad_input = Tensor::zeros(&self.cache_shape);
        for b in 0..batch {
            for c in 0..channels {
                let g = grad_output.at2(b, c) / len as f32;
                for n in 0..len {
                    grad_input.set3(b, c, n, g);
                }
            }
        }
        grad_input
    }
}

// ---------------------------------------------------------------------------
// Residual block
// ---------------------------------------------------------------------------

/// Residual block of the paper's network: two (Conv1d → BatchNorm → ReLU)
/// stages whose output is summed element-wise with a shortcut connection,
/// followed by a final ReLU. When the channel count changes, the shortcut is
/// a 1×1 convolution followed by batch normalisation (the standard ResNet
/// projection shortcut).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResidualBlock1d {
    conv1: Conv1d,
    bn1: BatchNorm1d,
    relu1: Relu,
    conv2: Conv1d,
    bn2: BatchNorm1d,
    projection: Option<(Conv1d, BatchNorm1d)>,
    relu_out: Relu,
    cache_main: Option<Tensor>,
}

impl ResidualBlock1d {
    /// Creates a residual block mapping `in_channels` to `out_channels` with
    /// the given kernel size.
    pub fn new(in_channels: usize, out_channels: usize, kernel_size: usize, seed: u64) -> Self {
        let projection = if in_channels != out_channels {
            Some((
                Conv1d::new(in_channels, out_channels, 1, seed.wrapping_add(77)),
                BatchNorm1d::new(out_channels),
            ))
        } else {
            None
        };
        Self {
            conv1: Conv1d::new(in_channels, out_channels, kernel_size, seed),
            bn1: BatchNorm1d::new(out_channels),
            relu1: Relu::new(),
            conv2: Conv1d::new(out_channels, out_channels, kernel_size, seed.wrapping_add(1)),
            bn2: BatchNorm1d::new(out_channels),
            projection,
            relu_out: Relu::new(),
            cache_main: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.conv2.out_channels()
    }
}

impl Layer for ResidualBlock1d {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut main = self.conv1.forward(input, training);
        main = self.bn1.forward(&main, training);
        main = self.relu1.forward(&main, training);
        main = self.conv2.forward(&main, training);
        main = self.bn2.forward(&main, training);
        let shortcut = match self.projection.as_mut() {
            Some((conv, bn)) => {
                let s = conv.forward(input, training);
                bn.forward(&s, training)
            }
            None => input.clone(),
        };
        let sum = main.add(&shortcut);
        self.cache_main = Some(sum.clone());
        self.relu_out.forward(&sum, training)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let grad_sum = self.relu_out.backward(grad_output);
        // Main branch.
        let g = self.bn2.backward(&grad_sum);
        let g = self.conv2.backward(&g);
        let g = self.relu1.backward(&g);
        let g = self.bn1.backward(&g);
        let grad_main_input = self.conv1.backward(&g);
        // Shortcut branch.
        let grad_shortcut_input = match self.projection.as_mut() {
            Some((conv, bn)) => {
                let g = bn.backward(&grad_sum);
                conv.backward(&g)
            }
            None => grad_sum.clone(),
        };
        grad_main_input.add(&grad_shortcut_input)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.conv1.params_mut());
        params.extend(self.bn1.params_mut());
        params.extend(self.conv2.params_mut());
        params.extend(self.bn2.params_mut());
        if let Some((conv, bn)) = self.projection.as_mut() {
            params.extend(conv.params_mut());
            params.extend(bn.params_mut());
        }
        params
    }
}

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------

/// A simple sequential container of boxed layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential model from a list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers in the container.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut x = input.clone();
        for layer in self.layers.iter_mut() {
            x = layer.forward(&x, training);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check of a layer's input gradient and parameter
    /// gradients on a tiny random problem.
    fn gradcheck<L: Layer>(layer: &mut L, input_shape: &[usize], tolerance: f32) {
        let input = init::uniform(input_shape, -1.0, 1.0, 99);
        // Scalar objective: weighted sum of outputs (weights fixed).
        let out = layer.forward(&input, true);
        let obj_weights = init::uniform(out.shape(), -1.0, 1.0, 123);
        let objective = |out: &Tensor| -> f32 {
            out.data().iter().zip(obj_weights.data().iter()).map(|(a, b)| a * b).sum()
        };
        // Analytic gradients.
        layer.zero_grad();
        let _ = layer.forward(&input, true);
        let grad_input = layer.backward(&obj_weights);
        // Numeric input gradient (spot-check a handful of coordinates).
        let eps = 1e-2f32;
        let check_idx: Vec<usize> =
            (0..input.len()).step_by((input.len() / 7).max(1)).take(8).collect();
        for &idx in &check_idx {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let f_plus = objective(&layer.forward(&plus, true));
            let f_minus = objective(&layer.forward(&minus, true));
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grad_input.data()[idx];
            assert!(
                (numeric - analytic).abs() < tolerance * (1.0 + numeric.abs()),
                "input grad mismatch at {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -3.0], &[1, 4]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = relu.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 4]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn linear_known_values() {
        let mut lin = Linear::new(2, 1, 1);
        // Overwrite weights for a deterministic check: y = 2*x0 - x1 + 0.5
        lin.weight.value = Tensor::from_vec(vec![2.0, -1.0], &[1, 2]);
        lin.bias.value = Tensor::from_vec(vec![0.5], &[1]);
        let x = Tensor::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        let y = lin.forward(&x, true);
        assert_eq!(y.data(), &[0.5, -0.5]);
        let g = lin.backward(&Tensor::from_rows(&[vec![1.0], vec![1.0]]));
        // dL/dx = w for unit output grads.
        assert_eq!(g.data(), &[2.0, -1.0, 2.0, -1.0]);
        // dL/dw = sum of inputs, dL/db = 2.
        assert_eq!(lin.weight.grad.data(), &[1.0, 3.0]);
        assert_eq!(lin.bias.grad.data(), &[2.0]);
    }

    #[test]
    fn linear_gradcheck() {
        let mut lin = Linear::new(5, 3, 3);
        gradcheck(&mut lin, &[4, 5], 1e-2);
    }

    #[test]
    fn conv1d_identity_kernel() {
        let mut conv = Conv1d::new(1, 1, 1, 1);
        conv.weight.value = Tensor::from_vec(vec![1.0], &[1, 1, 1]);
        conv.bias.value = Tensor::from_vec(vec![0.0], &[1]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv1d_same_padding_keeps_length() {
        for k in [1usize, 3, 4, 7, 8] {
            let mut conv = Conv1d::new(2, 3, k, 5);
            let x = init::uniform(&[2, 2, 10], -1.0, 1.0, 7);
            let y = conv.forward(&x, true);
            assert_eq!(y.shape(), &[2, 3, 10], "kernel {k}");
        }
    }

    #[test]
    fn conv1d_moving_average_kernel() {
        let mut conv = Conv1d::new(1, 1, 3, 1);
        conv.weight.value = Tensor::from_vec(vec![1.0 / 3.0; 3], &[1, 1, 3]);
        conv.bias.value = Tensor::from_vec(vec![0.0], &[1]);
        let x = Tensor::from_vec(vec![3.0, 3.0, 3.0, 3.0, 3.0], &[1, 1, 5]);
        let y = conv.forward(&x, true);
        // Interior samples see the full window, borders see 2/3 of it.
        assert!((y.at3(0, 0, 2) - 3.0).abs() < 1e-6);
        assert!((y.at3(0, 0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn conv1d_gradcheck() {
        let mut conv = Conv1d::new(2, 2, 3, 11);
        gradcheck(&mut conv, &[2, 2, 6], 2e-2);
    }

    #[test]
    fn batchnorm_normalises_in_training() {
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 1, 3]);
        let y = bn.forward(&x, true);
        let mean: f32 = y.data().iter().sum::<f32>() / 6.0;
        let var: f32 = y.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 6.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        // Run several training batches to populate running statistics.
        for seed in 0..20u64 {
            let x = init::uniform(&[4, 1, 8], 4.0, 6.0, seed);
            let _ = bn.forward(&x, true);
        }
        // In eval mode a constant input centred on the running mean maps near zero.
        let x = Tensor::from_vec(vec![5.0; 8], &[1, 1, 8]);
        let y = bn.forward(&x, false);
        assert!(y.data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn batchnorm_gradcheck() {
        let mut bn = BatchNorm1d::new(2);
        gradcheck(&mut bn, &[3, 2, 4], 3e-2);
    }

    #[test]
    fn global_avg_pool_values_and_shape() {
        let mut pool = GlobalAvgPool1d::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 4]);
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[4.0, 2.0]);
        let g = pool.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]));
        assert_eq!(g.shape(), &[1, 2, 4]);
        assert_eq!(g.at3(0, 0, 0), 1.0);
        assert_eq!(g.at3(0, 1, 3), 2.0);
    }

    #[test]
    fn residual_block_shapes_and_projection() {
        let mut same = ResidualBlock1d::new(4, 4, 3, 1);
        let x = init::uniform(&[2, 4, 6], -1.0, 1.0, 3);
        let y = same.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4, 6]);

        let mut grow = ResidualBlock1d::new(4, 8, 3, 2);
        let y = grow.forward(&x, true);
        assert_eq!(y.shape(), &[2, 8, 6]);
        assert_eq!(grow.out_channels(), 8);
        // Projection shortcut adds parameters.
        assert!(grow.param_count() > same.param_count());
    }

    #[test]
    fn residual_block_gradcheck() {
        let mut block = ResidualBlock1d::new(2, 3, 3, 17);
        gradcheck(&mut block, &[2, 2, 5], 5e-2);
    }

    #[test]
    fn sequential_composes() {
        let mut model = Sequential::new(vec![
            Box::new(Linear::new(3, 4, 1)),
            Box::new(Relu::new()),
            Box::new(Linear::new(4, 2, 2)),
        ]);
        let x = init::uniform(&[5, 3], -1.0, 1.0, 9);
        let y = model.forward(&x, true);
        assert_eq!(y.shape(), &[5, 2]);
        model.zero_grad();
        let g = model.backward(&Tensor::zeros(&[5, 2]));
        assert_eq!(g.shape(), &[5, 3]);
        assert_eq!(model.params_mut().len(), 4);
        assert!(!model.is_empty());
        assert_eq!(model.len(), 3);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut lin = Linear::new(2, 2, 1);
        lin.backward(&Tensor::zeros(&[1, 2]));
    }
}
