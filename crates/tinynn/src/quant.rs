//! Per-channel symmetric `i8` weight quantisation and dynamic activation
//! quantisation.
//!
//! The quantisation scheme is the standard inference recipe:
//!
//! * **Weights** are quantised *per output channel* (per row of the GEMM
//!   operand): each row gets its own scale `s_r = max|w_r| / 127` and is
//!   stored as `i8` values `q = round(w / s_r)`. Per-channel scales bound the
//!   roundtrip error of every weight by `s_r / 2` — one badly scaled channel
//!   cannot poison the rest.
//! * **Activations** stay `f32` at the layer boundary and are quantised
//!   *dynamically* per call to `i16` (scale `max|x| / 32767`), which makes
//!   their quantisation error negligible next to the weight error while the
//!   integer product `i8 × i16` still accumulates exactly in `i32` panels
//!   (see [`crate::matmul::matmul_q8`]).
//! * **Accumulation** is integer (`i32` within depth panels), and the panel
//!   sums are rescaled into `f32` with `s_row · s_act`.
//!
//! Biases and every non-GEMM layer (batch norm, pooling, ReLU) remain `f32`:
//! the conv/linear GEMMs are where essentially all inference time and memory
//! bandwidth go.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Largest magnitude representable by the `i8` weight grid.
pub const WEIGHT_QMAX: f32 = 127.0;

/// Largest magnitude representable by the `i16` activation grid.
pub const ACT_QMAX: f32 = 32767.0;

/// A per-row (per-output-channel) symmetrically quantised GEMM operand:
/// `i8` weights, one `f32` scale per row, and the `f32` bias of the layer.
///
/// This is the shared storage of [`crate::qlayers::QuantizedConv1d`] and
/// [`crate::qlayers::QuantizedLinear`], and the unit the versioned model
/// format serialises.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedGemm {
    data: Vec<i8>,
    /// The same codes widened to `i16` once at construction: the integer
    /// kernels multiply `i16 × i16` (the x86 `pmaddwd` shape), so keeping a
    /// widened shadow copy moves the sign extension out of every inner loop.
    /// Never serialised — rebuilt from `data` on load.
    data16: Vec<i16>,
    scales: Vec<f32>,
    bias: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl PartialEq for QuantizedGemm {
    fn eq(&self, other: &Self) -> bool {
        // `data16` is derived state; comparing it would be redundant.
        self.data == other.data
            && self.scales == other.scales
            && self.bias == other.bias
            && self.rows == other.rows
            && self.cols == other.cols
    }
}

impl QuantizedGemm {
    /// Quantises a row-major `[rows, cols]` weight matrix with per-row
    /// symmetric scales. A row of zeros gets scale `1.0` (never `NaN` or
    /// zero), so dequantisation is always well defined.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * cols` or `bias.len() != rows`.
    pub fn from_f32(weights: &[f32], bias: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(weights.len(), rows * cols, "weights must be rows*cols = {rows}x{cols}");
        assert_eq!(bias.len(), rows, "bias length must equal the row count {rows}");
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for row in weights.chunks(cols) {
            let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if max_abs == 0.0 { 1.0 } else { max_abs / WEIGHT_QMAX };
            let inv = 1.0 / scale;
            scales.push(scale);
            data.extend(
                row.iter().map(|&v| (v * inv).round().clamp(-WEIGHT_QMAX, WEIGHT_QMAX) as i8),
            );
        }
        let data16 = data.iter().map(|&q| q as i16).collect();
        Self { data, data16, scales, bias: bias.to_vec(), rows, cols }
    }

    /// Quantises a weight tensor whose first dimension is the output-channel
    /// (row) dimension; the remaining dimensions are flattened into columns.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty or `bias` does not match the first
    /// dimension.
    pub fn from_tensor(weights: &Tensor, bias: &[f32]) -> Self {
        let rows = weights.shape()[0];
        let cols = weights.len() / rows.max(1);
        Self::from_f32(weights.data(), bias, rows, cols)
    }

    /// Number of rows (output channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (fan-in per output channel).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `i8` weight block, row-major `[rows, cols]` (the serialised
    /// representation).
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The weight codes widened to `i16` (same values as [`Self::data`]),
    /// the operand shape of the integer GEMM kernels.
    pub fn data16(&self) -> &[i16] {
        &self.data16
    }

    /// Per-row dequantisation scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The layer bias (kept in `f32`).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Bytes occupied by the quantised weight block (excluding scales/bias).
    pub fn quantized_bytes(&self) -> usize {
        self.data.len()
    }

    /// Replaces the quantised payload (used by the model loader).
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if any length disagrees with
    /// the operand's `[rows, cols]` geometry.
    pub fn set_payload(
        &mut self,
        data: Vec<i8>,
        scales: Vec<f32>,
        bias: Vec<f32>,
    ) -> Result<(), String> {
        if data.len() != self.rows * self.cols {
            return Err(format!(
                "quantised block length {} does not match {}x{}",
                data.len(),
                self.rows,
                self.cols
            ));
        }
        if scales.len() != self.rows {
            return Err(format!("scale count {} does not match {} rows", scales.len(), self.rows));
        }
        if bias.len() != self.rows {
            return Err(format!("bias count {} does not match {} rows", bias.len(), self.rows));
        }
        self.data16 = data.iter().map(|&q| q as i16).collect();
        self.data = data;
        self.scales = scales;
        self.bias = bias;
        Ok(())
    }

    /// Dequantises the weight block back to `f32` (row-major), mainly for
    /// tests and diagnostics.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.data.len());
        for (row, &scale) in self.data.chunks(self.cols).zip(self.scales.iter()) {
            out.extend(row.iter().map(|&q| q as f32 * scale));
        }
        out
    }
}

/// Dynamically quantises an activation slice to `i16` with one symmetric
/// scale, writing into `dst` (cleared first) and returning the scale.
///
/// An all-zero (or empty) input yields scale `1.0` and zero codes, so the
/// caller never sees a `NaN` or zero scale. Non-finite inputs saturate to
/// the grid limits.
///
/// The float→code conversion is the classic magic-constant trick: after
/// clamping to the grid, adding `1.5 · 2²³` pins the value's integer part
/// (round-to-nearest-even) into the low mantissa bits, which are read back
/// with a bit cast. No float→int cast instruction exists in the loop — a
/// saturating `as i16` (and `f32::round`, a libcall) would each keep LLVM
/// from vectorising this hot path (~13× slower, measured).
pub fn quantize_activations_into(src: &[f32], dst: &mut Vec<i16>) -> f32 {
    /// `1.5 · 2²³` — for `|r| ≤ 2²², r + MAGIC` has a fixed exponent, so
    /// its low 16 mantissa bits are `round(r)` in two's complement.
    const MAGIC: f32 = 12_582_912.0;
    let max_abs = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let scale = if max_abs == 0.0 || !max_abs.is_finite() { 1.0 } else { max_abs / ACT_QMAX };
    let inv = 1.0 / scale;
    dst.resize(src.len(), 0);
    for (d, &v) in dst.iter_mut().zip(src.iter()) {
        // max/min (not `clamp`) so a NaN lands on a grid limit instead of
        // flowing through to the bit trick.
        #[allow(clippy::manual_clamp)]
        let r = (v * inv).max(-ACT_QMAX).min(ACT_QMAX);
        *d = (r + MAGIC).to_bits() as u16 as i16;
    }
    scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn per_row_scales_are_max_abs_over_127() {
        let w = vec![1.0f32, -2.0, 0.5, 0.0, 0.25, -0.125];
        let g = QuantizedGemm::from_f32(&w, &[0.0, 0.0], 2, 3);
        assert_eq!(g.scales()[0], 2.0 / WEIGHT_QMAX);
        assert_eq!(g.scales()[1], 0.25 / WEIGHT_QMAX);
    }

    #[test]
    fn roundtrip_error_is_bounded_by_half_scale() {
        let w = init::uniform(&[4, 33], -0.7, 0.7, 42);
        let g = QuantizedGemm::from_tensor(&w, &[0.0; 4]);
        let back = g.dequantize();
        for (r, (orig_row, deq_row)) in w.data().chunks(33).zip(back.chunks(33)).enumerate() {
            let half = g.scales()[r] / 2.0;
            for (&a, &b) in orig_row.iter().zip(deq_row.iter()) {
                assert!((a - b).abs() <= half * 1.0001, "row {r}: {a} vs {b} (half {half})");
            }
        }
    }

    #[test]
    fn zero_row_has_finite_scale_and_zero_codes() {
        let w = vec![0.0f32; 8];
        let g = QuantizedGemm::from_f32(&w, &[1.0, -1.0], 2, 4);
        assert!(g.scales().iter().all(|s| s.is_finite() && *s > 0.0));
        assert!(g.data().iter().all(|&q| q == 0));
        assert_eq!(g.dequantize(), vec![0.0; 8]);
    }

    #[test]
    fn activation_quantisation_is_symmetric_and_tight() {
        let x = vec![0.5f32, -1.5, 0.0, 1.5];
        let mut q = Vec::new();
        let scale = quantize_activations_into(&x, &mut q);
        assert_eq!(scale, 1.5 / ACT_QMAX);
        assert_eq!(q[1], -32767);
        assert_eq!(q[3], 32767);
        assert_eq!(q[2], 0);
        for (&orig, &code) in x.iter().zip(q.iter()) {
            assert!((orig - code as f32 * scale).abs() <= scale / 2.0 * 1.0001);
        }
    }

    #[test]
    fn all_zero_activations_do_not_produce_nan_scale() {
        let mut q = Vec::new();
        let scale = quantize_activations_into(&[0.0; 5], &mut q);
        assert_eq!(scale, 1.0);
        assert!(q.iter().all(|&v| v == 0));
        let scale = quantize_activations_into(&[], &mut q);
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn set_payload_validates_lengths() {
        let mut g = QuantizedGemm::from_f32(&[1.0; 6], &[0.0; 2], 2, 3);
        assert!(g.set_payload(vec![0; 5], vec![1.0; 2], vec![0.0; 2]).is_err());
        assert!(g.set_payload(vec![0; 6], vec![1.0; 3], vec![0.0; 2]).is_err());
        assert!(g.set_payload(vec![0; 6], vec![1.0; 2], vec![0.0; 1]).is_err());
        assert!(g.set_payload(vec![0; 6], vec![1.0; 2], vec![0.0; 2]).is_ok());
    }
}
