//! Per-channel symmetric `i8` weight quantisation, activation quantisation
//! and the fixed-point requantisation machinery of the integer-chained
//! inference path.
//!
//! The quantisation scheme is the standard inference recipe:
//!
//! * **Weights** are quantised *per output channel* (per row of the GEMM
//!   operand): each row gets its own scale `s_r = max|w_r| / 127` and is
//!   stored as `i8` values `q = round(w / s_r)`. Per-channel scales bound the
//!   roundtrip error of every weight by `s_r / 2` — one badly scaled channel
//!   cannot poison the rest.
//! * **Activations** are `i16` codes. The legacy per-call path quantises
//!   dynamically (scale `max|x| / 32767`, [`quantize_activations_into`]);
//!   the fixed-point path quantises the network *input* once against a
//!   statically calibrated scale ([`quantize_with_scale_into`]) and then
//!   keeps every inter-layer activation in `i16` — no f32 roundtrip between
//!   layers.
//! * **Accumulation** is integer (`i32` within depth panels). The legacy
//!   path rescales panel sums into `f32` with `s_row · s_act`; the
//!   fixed-point path maps them straight onto the next layer's `i16` input
//!   grid with a precomputed per-channel [`Requantizer`] (`acc · m ≫ shift`,
//!   round-to-nearest-even — the Jacob et al. integer-only recipe), with
//!   ReLU fused as the `[0, 32767]` clamp of that same store.
//!
//! Biases on the fixed-point path are pre-quantised to accumulator units
//! (`round(b / (s_row · s_in))`, a [`QuantPlan`]); everything non-GEMM that
//! remains (global pooling, the tiny fully connected head) stays `f32`.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Largest magnitude representable by the `i8` weight grid.
pub const WEIGHT_QMAX: f32 = 127.0;

/// Largest magnitude representable by the `i16` activation grid.
pub const ACT_QMAX: f32 = 32767.0;

/// A per-row (per-output-channel) symmetrically quantised GEMM operand:
/// `i8` weights, one `f32` scale per row, and the `f32` bias of the layer.
///
/// This is the shared storage of [`crate::qlayers::QuantizedConv1d`] and
/// [`crate::qlayers::QuantizedLinear`], and the unit the versioned model
/// format serialises.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedGemm {
    data: Vec<i8>,
    /// The same codes widened to `i16` once at construction: the integer
    /// kernels multiply `i16 × i16` (the x86 `pmaddwd` shape), so keeping a
    /// widened shadow copy moves the sign extension out of every inner loop.
    /// Never serialised — rebuilt from `data` on load.
    data16: Vec<i16>,
    /// The same codes pair-packed into the `[⌈cols/2⌉, rows, 2]` layout of
    /// the SIMD GEMM (`qsimd::pack_weight_pairs`): one `vpmaddwd` against a
    /// broadcast activation pair advances two depth steps for eight channels
    /// with the accumulators held in channel lanes. Arch-independent derived
    /// state — never serialised, rebuilt from `data` on load.
    packed16: Vec<i16>,
    scales: Vec<f32>,
    bias: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl PartialEq for QuantizedGemm {
    fn eq(&self, other: &Self) -> bool {
        // `data16` is derived state; comparing it would be redundant.
        self.data == other.data
            && self.scales == other.scales
            && self.bias == other.bias
            && self.rows == other.rows
            && self.cols == other.cols
    }
}

impl QuantizedGemm {
    /// Quantises a row-major `[rows, cols]` weight matrix with per-row
    /// symmetric scales. A row of zeros gets scale `1.0` (never `NaN` or
    /// zero), so dequantisation is always well defined.
    ///
    /// Each row's scale is the classic `max|w| / 127`: round-to-nearest
    /// onto that grid keeps every weight within half a step and never
    /// clips. (A per-row reconstruction-MSE scale search below absmax was
    /// tried and measurably *worsened* end-to-end score parity — clipping a
    /// row's largest taps costs the dot products more than the finer grid
    /// buys — so the simple rule stays.)
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * cols` or `bias.len() != rows`.
    pub fn from_f32(weights: &[f32], bias: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(weights.len(), rows * cols, "weights must be rows*cols = {rows}x{cols}");
        assert_eq!(bias.len(), rows, "bias length must equal the row count {rows}");
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for row in weights.chunks(cols) {
            let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if max_abs == 0.0 { 1.0 } else { max_abs / WEIGHT_QMAX };
            let inv = 1.0 / scale;
            scales.push(scale);
            data.extend(
                row.iter().map(|&v| (v * inv).round().clamp(-WEIGHT_QMAX, WEIGHT_QMAX) as i8),
            );
        }
        let data16: Vec<i16> = data.iter().map(|&q| q as i16).collect();
        let mut packed16 = Vec::new();
        qsimd::pack_weight_pairs(&mut packed16, &data16, rows, cols);
        Self { data, data16, packed16, scales, bias: bias.to_vec(), rows, cols }
    }

    /// Quantises a weight tensor whose first dimension is the output-channel
    /// (row) dimension; the remaining dimensions are flattened into columns.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty or `bias` does not match the first
    /// dimension.
    pub fn from_tensor(weights: &Tensor, bias: &[f32]) -> Self {
        let rows = weights.shape()[0];
        let cols = weights.len() / rows.max(1);
        Self::from_f32(weights.data(), bias, rows, cols)
    }

    /// Number of rows (output channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (fan-in per output channel).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `i8` weight block, row-major `[rows, cols]` (the serialised
    /// representation).
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The weight codes widened to `i16` (same values as [`Self::data`]),
    /// the operand shape of the integer GEMM kernels.
    pub fn data16(&self) -> &[i16] {
        &self.data16
    }

    /// The weight codes pair-packed for the SIMD GEMM
    /// (`[⌈cols/2⌉, rows, 2]`, odd depths zero-padded).
    pub fn packed16(&self) -> &[i16] {
        &self.packed16
    }

    /// Per-row dequantisation scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The layer bias (kept in `f32`).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Bytes occupied by the quantised weight block (excluding scales/bias).
    pub fn quantized_bytes(&self) -> usize {
        self.data.len()
    }

    /// Total heap bytes this operand keeps resident at serving time: the
    /// `i8` block, its derived `i16` widened and pair-packed copies, and the
    /// per-row scale/bias vectors. This is the number a model registry
    /// should budget against, not [`Self::quantized_bytes`] (the on-disk
    /// size).
    pub fn resident_bytes(&self) -> usize {
        self.data.len()
            + self.data16.len() * 2
            + self.packed16.len() * 2
            + (self.scales.len() + self.bias.len()) * 4
    }

    /// Replaces the quantised payload (used by the model loader).
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if any length disagrees with
    /// the operand's `[rows, cols]` geometry.
    pub fn set_payload(
        &mut self,
        data: Vec<i8>,
        scales: Vec<f32>,
        bias: Vec<f32>,
    ) -> Result<(), String> {
        if data.len() != self.rows * self.cols {
            return Err(format!(
                "quantised block length {} does not match {}x{}",
                data.len(),
                self.rows,
                self.cols
            ));
        }
        if scales.len() != self.rows {
            return Err(format!("scale count {} does not match {} rows", scales.len(), self.rows));
        }
        if bias.len() != self.rows {
            return Err(format!("bias count {} does not match {} rows", bias.len(), self.rows));
        }
        self.data16 = data.iter().map(|&q| q as i16).collect();
        qsimd::pack_weight_pairs(&mut self.packed16, &self.data16, self.rows, self.cols);
        self.data = data;
        self.scales = scales;
        self.bias = bias;
        Ok(())
    }

    /// Dequantises the weight block back to `f32` (row-major), mainly for
    /// tests and diagnostics.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.data.len());
        for (row, &scale) in self.data.chunks(self.cols).zip(self.scales.iter()) {
            out.extend(row.iter().map(|&q| q as f32 * scale));
        }
        out
    }
}

/// `1.5 · 2²³` — for `|r| ≤ 2²², r + MAGIC` has a fixed exponent, so its
/// low 16 mantissa bits are `round(r)` in two's complement. The classic
/// magic-constant float→code trick: no float→int cast instruction exists in
/// the quantisation loops — a saturating `as i16` (and `f32::round`, a
/// libcall) would each keep LLVM from vectorising them (~13× slower,
/// measured).
const MAGIC: f32 = 12_582_912.0;

/// Dynamically quantises an activation slice to `i16` with one symmetric
/// scale, writing into `dst` (cleared first) and returning the scale.
///
/// An all-zero (or empty) input yields scale `1.0` and zero codes, so the
/// caller never sees a `NaN` or zero scale. Non-finite inputs do not poison
/// the grid: the scale is chosen from the *finite* values only, `±inf`
/// saturates to the grid limits and `NaN` maps to code 0.
pub fn quantize_activations_into(src: &[f32], dst: &mut Vec<i16>) -> f32 {
    let max_abs = src.iter().fold(0.0f32, |m, &v| {
        let a = v.abs();
        // A non-finite sample must not drive the grid: `inf` would zero
        // every other code and `NaN` would poison the fold.
        if a.is_finite() {
            m.max(a)
        } else {
            m
        }
    });
    let scale = if max_abs == 0.0 { 1.0 } else { max_abs / ACT_QMAX };
    dst.resize(src.len(), 0);
    quantize_with_scale(src, scale, dst);
    scale
}

/// Quantises an activation slice to `i16` against a *fixed* symmetric scale
/// (the statically calibrated grid of the fixed-point inference chain),
/// writing one code per sample into `dst`.
///
/// Values beyond the grid (including `±inf`) saturate to `±32767`; `NaN`
/// maps to code 0 — untrusted trace data can never produce garbage codes.
///
/// # Panics
///
/// Panics if `dst.len() != src.len()` or `scale` is not finite and positive.
pub fn quantize_with_scale(src: &[f32], scale: f32, dst: &mut [i16]) {
    assert_eq!(dst.len(), src.len(), "one code per sample");
    assert!(scale.is_finite() && scale > 0.0, "activation scale must be finite and positive");
    let inv = 1.0 / scale;
    for (d, &v) in dst.iter_mut().zip(src.iter()) {
        // NaN → 0 before the grid clamp (a compare+select, vectorisable);
        // max/min (not `clamp`) so the result of the multiply can never
        // reach the bit trick as a NaN either.
        let v = if v.is_nan() { 0.0 } else { v };
        #[allow(clippy::manual_clamp)]
        let r = (v * inv).max(-ACT_QMAX).min(ACT_QMAX);
        *d = (r + MAGIC).to_bits() as u16 as i16;
    }
}

// ---------------------------------------------------------------------------
// Fixed-point requantisation
// ---------------------------------------------------------------------------

/// A positive real ratio `r ≈ mult · 2^(-shift)` in fixed point, used to map
/// one quantisation grid onto another without any float arithmetic:
/// `apply(acc)` computes `round_ties_even(acc · r)` **exactly** for the
/// stored dyadic ratio.
///
/// `mult` is normalised into `[2³⁰, 2³¹)` whenever the shift budget allows,
/// so the ratio carries ~31 significant bits; `shift ≤ 62` keeps the
/// `i32 × i32` product inside `i64`. Degenerate ratios (zero, negative,
/// non-finite) collapse to the all-zero requantiser, which maps every
/// accumulator to 0 — never garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requantizer {
    mult: i32,
    shift: u8,
}

impl Requantizer {
    /// Largest shift: `acc · mult` is bounded by `2³¹ · 2³¹ = 2⁶²`, so any
    /// shift up to 62 stays an ordinary `i64` arithmetic shift.
    pub const MAX_SHIFT: u8 = 62;

    /// Builds the fixed-point approximation of `ratio` (typically
    /// `s_weight · s_in / s_out`). The relative approximation error is
    /// ≤ 2⁻³¹ for any ratio in `(2⁻³², 2³⁰)` — far below the `i16` grid.
    pub fn from_ratio(ratio: f64) -> Self {
        if !ratio.is_finite() || ratio <= 0.0 {
            return Self { mult: 0, shift: 0 };
        }
        let mut scaled = ratio;
        let mut shift: u8 = 0;
        while scaled < (1u64 << 30) as f64 && shift < Self::MAX_SHIFT {
            scaled *= 2.0;
            shift += 1;
        }
        while scaled >= (1u64 << 31) as f64 && shift > 0 {
            scaled /= 2.0;
            shift -= 1;
        }
        let mut mult = scaled.round_ties_even();
        // Rounding can land exactly on 2³¹; renormalise (2³⁰ · 2 is exact).
        if mult >= (1u64 << 31) as f64 && shift > 0 {
            mult /= 2.0;
            shift -= 1;
        }
        if mult > i32::MAX as f64 {
            // Pathological ratio ≥ ~2³⁰ with no shift budget left: saturate.
            return Self { mult: i32::MAX, shift };
        }
        Self { mult: mult as i32, shift }
    }

    /// Builds the fixed-point approximation of `ratio` at a *caller-chosen*
    /// shift: `mult = rne(ratio · 2^shift)`, saturated to `i32::MAX`.
    ///
    /// This is how a [`QuantPlan`] aligns every channel of a layer onto one
    /// shared shift (the SIMD epilogue divides all lanes by the same power
    /// of two): channels whose natural shift exceeds the shared one lose
    /// their lowest multiplier bits, a relative error of at most
    /// `2^(-shift) / ratio` — negligible as long as the per-channel ratios
    /// of a layer sit within a few powers of two of each other, which
    /// per-output-channel weight scales of one layer always do.
    ///
    /// Degenerate ratios (zero, negative, non-finite) collapse to the
    /// all-zero map at the requested shift, like [`Self::from_ratio`].
    pub fn with_shift(ratio: f64, shift: u8) -> Self {
        let shift = shift.min(Self::MAX_SHIFT);
        if !ratio.is_finite() || ratio <= 0.0 {
            return Self { mult: 0, shift };
        }
        let mult = (ratio * (1u64 << shift) as f64).round_ties_even();
        if mult > i32::MAX as f64 {
            return Self { mult: i32::MAX, shift };
        }
        Self { mult: mult as i32, shift }
    }

    /// The fixed-point multiplier.
    pub fn mult(self) -> i32 {
        self.mult
    }

    /// The right-shift paired with [`Self::mult`].
    pub fn shift(self) -> u8 {
        self.shift
    }

    /// The real ratio this requantiser encodes (`mult · 2^(-shift)`).
    pub fn ratio(self) -> f64 {
        self.mult as f64 / (1u64 << self.shift) as f64
    }

    /// `round_ties_even(acc · mult / 2^shift)`, computed exactly in integer
    /// arithmetic. Branchless: the arithmetic shift is a floor division
    /// whose non-negative remainder decides the round-up, with the tie
    /// broken towards the even floor.
    #[inline]
    pub fn apply(self, acc: i32) -> i64 {
        let prod = acc as i64 * self.mult as i64;
        if self.shift == 0 {
            return prod;
        }
        let floor = prod >> self.shift;
        let rem = prod & ((1i64 << self.shift) - 1);
        let half = 1i64 << (self.shift - 1);
        // rem > half → +1; rem == half → +1 only if floor is odd (the two
        // conditions are exclusive, so a plain `|` combines them).
        floor + (((rem > half) as i64) | ((rem == half) as i64 & floor))
    }

    /// Requantises an accumulator onto an `i16` grid segment: [`Self::apply`]
    /// then clamp to `[lo, hi]`. `lo = 0` *is* the fused ReLU of the
    /// integer chain.
    #[inline]
    pub fn requantize_i16(self, acc: i32, lo: i16, hi: i16) -> i16 {
        self.apply(acc).clamp(lo as i64, hi as i64) as i16
    }
}

/// The precomputed fixed-point execution plan of one quantised GEMM layer:
/// per-output-channel requantisers onto the consumer's grid, the bias in
/// accumulator units, and the output clamp (which encodes a fused ReLU).
#[derive(Debug, Clone)]
pub struct QuantPlan {
    /// One requantiser per output channel
    /// (`s_weight[oc] · s_in / s_out`), all sharing [`Self::shift`].
    pub mults: Vec<Requantizer>,
    /// The multipliers of [`Self::mults`] as a bare `i32` slice — the
    /// operand shape of the SIMD requantisation epilogue.
    pub mults_i32: Vec<i32>,
    /// The shift shared by every channel of this layer. Per-channel
    /// requantisers naturally normalise to per-channel shifts; the plan
    /// re-expresses them all at the layer minimum
    /// ([`Requantizer::with_shift`]) so the vector epilogue divides all
    /// lanes by one power of two instead of doing per-lane variable 64-bit
    /// shifts (which AVX2 does not have).
    pub shift: u8,
    /// Bias pre-quantised to accumulator units:
    /// `round(b[oc] / (s_weight[oc] · s_in))`, added to the integer dot
    /// product before requantisation. Clamped to `±2³⁰`
    /// ([`qsimd::BIAS_BOUND`]): with depth-bounded accumulators below `2³⁰`
    /// the sum then never wraps an `i32`, so the plain vector add of the
    /// SIMD kernel and the saturating add of the scalar kernel are the same
    /// operation. (A bias beyond `2³⁰` accumulator units is ~`2¹⁵` output
    /// grids past the clamp — the clamp is where such an output lands
    /// regardless.)
    pub bias_q: Vec<i32>,
    /// Lower output clamp (0 when a ReLU is fused, −32767 otherwise).
    pub lo: i16,
    /// Upper output clamp (always 32767).
    pub hi: i16,
    /// The input activation scale the plan was built for.
    pub in_scale: f32,
    /// The output activation scale the plan maps onto.
    pub out_scale: f32,
}

impl QuantPlan {
    /// Builds the plan of `gemm` for a fixed input/output activation grid.
    ///
    /// # Panics
    ///
    /// Panics if either scale is not finite and positive.
    pub fn new(gemm: &QuantizedGemm, in_scale: f32, out_scale: f32, fused_relu: bool) -> Self {
        assert!(in_scale.is_finite() && in_scale > 0.0, "input scale must be finite and positive");
        assert!(
            out_scale.is_finite() && out_scale > 0.0,
            "output scale must be finite and positive"
        );
        let ratios: Vec<f64> = gemm
            .scales()
            .iter()
            .map(|&s_w| s_w as f64 * in_scale as f64 / out_scale as f64)
            .collect();
        // The layer's shared shift: the smallest natural shift across
        // channels (ignoring degenerate zero-maps). Channels with larger
        // natural shifts re-express at this one, trading their lowest
        // multiplier bits — see `Requantizer::with_shift`.
        let shift = ratios
            .iter()
            .map(|&r| Requantizer::from_ratio(r))
            .filter(|r| r.mult() != 0)
            .map(|r| r.shift())
            .min()
            .unwrap_or(0);
        let mults: Vec<Requantizer> =
            ratios.iter().map(|&r| Requantizer::with_shift(r, shift)).collect();
        let mults_i32 = mults.iter().map(|r| r.mult()).collect();
        let mut bias_q = Vec::with_capacity(gemm.rows());
        for (&s_w, &b) in gemm.scales().iter().zip(gemm.bias().iter()) {
            let acc_scale = s_w as f64 * in_scale as f64;
            let q = if b.is_finite() { (b as f64 / acc_scale).round_ties_even() } else { 0.0 };
            bias_q.push(q.clamp(-(qsimd::BIAS_BOUND as f64), qsimd::BIAS_BOUND as f64) as i32);
        }
        let lo = if fused_relu { 0 } else { -(ACT_QMAX as i16) };
        Self { mults, mults_i32, shift, bias_q, lo, hi: ACT_QMAX as i16, in_scale, out_scale }
    }
}

/// A batch of quantised activations in the channels-last zero-padded layout
/// of the sliding integer GEMM — the unit that travels *between* layers of
/// the fixed-point chain.
///
/// Per batch item the codes form a `[rows, channels]` matrix with
/// `rows = len + pad_total`: rows `pad_left .. pad_left + len` hold the
/// signal (sample-major, channel-minor) and the `pad_total` overhang rows
/// are zero. A consumer with kernel `k' ≤ pad_total + 1` and left padding
/// `p'` reads window `j` as the contiguous slice starting at row
/// `pad_left - p' + j` — one layout serves every kernel size in the network
/// (the uniform-`k` convolutions *and* the 1×1 projection).
#[derive(Debug, Clone)]
pub struct QuantActs {
    /// The codes, `[batch, rows, channels]`.
    pub codes: Vec<i16>,
    /// Batch size.
    pub batch: usize,
    /// Channel count.
    pub channels: usize,
    /// Signal length (body rows per item).
    pub len: usize,
    /// Zero rows before the body.
    pub pad_left: usize,
    /// Total rows per item (`len + pad_total`).
    pub rows: usize,
    /// The activation scale of the codes (`value = code · scale`).
    pub scale: f32,
}

impl QuantActs {
    /// Wraps a caller-provided buffer (resized, contents unspecified — the
    /// producer overwrites body rows and zeroes the pads).
    ///
    /// # Panics
    ///
    /// Panics if `rows < pad_left + len`.
    pub fn with_buffer(
        mut codes: Vec<i16>,
        batch: usize,
        channels: usize,
        len: usize,
        pad_left: usize,
        rows: usize,
        scale: f32,
    ) -> Self {
        assert!(rows >= pad_left + len, "padded rows must cover the body");
        codes.resize(batch * rows * channels, 0);
        Self { codes, batch, channels, len, pad_left, rows, scale }
    }

    /// One item's full `[rows, channels]` code block.
    #[inline]
    pub fn item(&self, b: usize) -> &[i16] {
        &self.codes[b * self.rows * self.channels..(b + 1) * self.rows * self.channels]
    }

    /// Zeroes both padding stripes of every item.
    pub fn zero_pads(&mut self) {
        let (rows, ch, pad, len) = (self.rows, self.channels, self.pad_left, self.len);
        for item in self.codes.chunks_exact_mut(rows * ch) {
            item[..pad * ch].fill(0);
            item[(pad + len) * ch..].fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn per_row_scales_are_max_abs_over_127() {
        let w = vec![1.0f32, -2.0, 0.5, 0.0, 0.25, -0.125];
        let g = QuantizedGemm::from_f32(&w, &[0.0, 0.0], 2, 3);
        assert_eq!(g.scales()[0], 2.0 / WEIGHT_QMAX);
        assert_eq!(g.scales()[1], 0.25 / WEIGHT_QMAX);
    }

    #[test]
    fn roundtrip_error_is_bounded_by_half_scale() {
        let w = init::uniform(&[4, 33], -0.7, 0.7, 42);
        let g = QuantizedGemm::from_tensor(&w, &[0.0; 4]);
        let back = g.dequantize();
        for (r, (orig_row, deq_row)) in w.data().chunks(33).zip(back.chunks(33)).enumerate() {
            let half = g.scales()[r] / 2.0;
            for (&a, &b) in orig_row.iter().zip(deq_row.iter()) {
                assert!((a - b).abs() <= half * 1.0001, "row {r}: {a} vs {b} (half {half})");
            }
        }
    }

    #[test]
    fn zero_row_has_finite_scale_and_zero_codes() {
        let w = vec![0.0f32; 8];
        let g = QuantizedGemm::from_f32(&w, &[1.0, -1.0], 2, 4);
        assert!(g.scales().iter().all(|s| s.is_finite() && *s > 0.0));
        assert!(g.data().iter().all(|&q| q == 0));
        assert_eq!(g.dequantize(), vec![0.0; 8]);
    }

    #[test]
    fn activation_quantisation_is_symmetric_and_tight() {
        let x = vec![0.5f32, -1.5, 0.0, 1.5];
        let mut q = Vec::new();
        let scale = quantize_activations_into(&x, &mut q);
        assert_eq!(scale, 1.5 / ACT_QMAX);
        assert_eq!(q[1], -32767);
        assert_eq!(q[3], 32767);
        assert_eq!(q[2], 0);
        for (&orig, &code) in x.iter().zip(q.iter()) {
            assert!((orig - code as f32 * scale).abs() <= scale / 2.0 * 1.0001);
        }
    }

    #[test]
    fn all_zero_activations_do_not_produce_nan_scale() {
        let mut q = Vec::new();
        let scale = quantize_activations_into(&[0.0; 5], &mut q);
        assert_eq!(scale, 1.0);
        assert!(q.iter().all(|&v| v == 0));
        let scale = quantize_activations_into(&[], &mut q);
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn non_finite_activations_saturate_instead_of_poisoning_the_grid() {
        // One inf/NaN among ordinary samples: the scale must come from the
        // finite values, inf must saturate and NaN must map to silence.
        let x = vec![0.5f32, f32::INFINITY, -2.0, f32::NAN, f32::NEG_INFINITY, 2.0];
        let mut q = Vec::new();
        let scale = quantize_activations_into(&x, &mut q);
        assert_eq!(scale, 2.0 / ACT_QMAX, "scale must ignore the non-finite samples");
        assert_eq!(q[1], 32767, "+inf saturates to the positive grid limit");
        assert_eq!(q[3], 0, "NaN maps to code 0");
        assert_eq!(q[4], -32767, "-inf saturates to the negative grid limit");
        assert_eq!(q[5], 32767);
        // All-non-finite input: fallback scale 1.0, still no garbage.
        let scale = quantize_activations_into(&[f32::NAN, f32::INFINITY], &mut q);
        assert_eq!(scale, 1.0);
        assert_eq!(q, vec![0, 32767]);
    }

    #[test]
    fn fixed_scale_quantisation_matches_dynamic_grid_and_saturates() {
        let x = vec![0.25f32, -1.0, 3.0, f32::NAN, f32::NEG_INFINITY];
        let scale = 1.0 / ACT_QMAX;
        let mut q = vec![0i16; x.len()];
        quantize_with_scale(&x, scale, &mut q);
        assert_eq!(q[0], 8192);
        assert_eq!(q[1], -32767);
        assert_eq!(q[2], 32767, "beyond-grid values saturate");
        assert_eq!(q[3], 0);
        assert_eq!(q[4], -32767);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn fixed_scale_quantisation_rejects_bad_scale() {
        quantize_with_scale(&[1.0], f32::NAN, &mut [0i16]);
    }

    #[test]
    fn requantizer_mult_is_normalised_and_ratio_tight() {
        for ratio in [1e-6f64, 3.7e-4, 0.021, 0.5, 1.0, 7.3, 900.0] {
            let r = Requantizer::from_ratio(ratio);
            assert!(
                (1 << 30..1i64 << 31).contains(&(r.mult() as i64)),
                "mult {} for ratio {ratio} not normalised",
                r.mult()
            );
            assert!((r.ratio() - ratio).abs() <= ratio * 2e-9, "ratio {ratio} vs {}", r.ratio());
        }
        // Degenerate ratios collapse to the zero map.
        for bad in [0.0f64, -1.0, f64::NAN, f64::INFINITY] {
            let r = Requantizer::from_ratio(bad);
            assert_eq!((r.mult(), r.shift()), (0, 0));
            assert_eq!(r.apply(12345), 0);
        }
    }

    #[test]
    fn requantizer_rounds_ties_to_even() {
        // ratio 0.5 → mult 2³⁰, shift 31: apply(acc) = RNE(acc / 2).
        let r = Requantizer::from_ratio(0.5);
        assert_eq!(r.apply(2), 1);
        assert_eq!(r.apply(3), 2, "1.5 rounds to even 2");
        assert_eq!(r.apply(5), 2, "2.5 rounds to even 2");
        assert_eq!(r.apply(-3), -2, "-1.5 rounds to even -2");
        assert_eq!(r.apply(-5), -2, "-2.5 rounds to even -2");
    }

    #[test]
    fn quant_plan_clamp_encodes_fused_relu() {
        let gemm = QuantizedGemm::from_f32(&[1.0, -1.0], &[0.5, -0.5], 2, 1);
        let plan = QuantPlan::new(&gemm, 1e-3, 1e-3, true);
        assert_eq!((plan.lo, plan.hi), (0, 32767));
        let plan = QuantPlan::new(&gemm, 1e-3, 1e-3, false);
        assert_eq!((plan.lo, plan.hi), (-32767, 32767));
        // bias_q = round(b / (s_w · s_in)) with s_w = 1/127.
        let expect = (0.5f64 / (1.0 / 127.0 * 1e-3)).round_ties_even() as i32;
        assert_eq!(plan.bias_q[0], expect);
        assert_eq!(plan.bias_q[1], -expect);
    }

    #[test]
    fn quant_acts_pads_are_zeroed_and_items_indexed() {
        let buf = vec![7i16; 2 * 6 * 3];
        let mut acts = QuantActs::with_buffer(buf, 2, 3, 4, 1, 6, 0.5);
        acts.zero_pads();
        for b in 0..2 {
            let item = acts.item(b).to_vec();
            assert_eq!(&item[..3], &[0, 0, 0], "left pad row");
            assert_eq!(&item[15..], &[0, 0, 0], "right pad row");
            assert!(item[3..15].iter().all(|&v| v == 7), "body untouched");
        }
    }

    #[test]
    fn set_payload_validates_lengths() {
        let mut g = QuantizedGemm::from_f32(&[1.0; 6], &[0.0; 2], 2, 3);
        assert!(g.set_payload(vec![0; 5], vec![1.0; 2], vec![0.0; 2]).is_err());
        assert!(g.set_payload(vec![0; 6], vec![1.0; 3], vec![0.0; 2]).is_err());
        assert!(g.set_payload(vec![0; 6], vec![1.0; 2], vec![0.0; 1]).is_err());
        assert!(g.set_payload(vec![0; 6], vec![1.0; 2], vec![0.0; 2]).is_ok());
    }
}
