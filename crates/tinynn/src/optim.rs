//! Optimisers: Adam (used by the paper, lr = 0.001) and plain SGD.

use serde::{Deserialize, Serialize};

use crate::param::Param;

/// The Adam optimiser (Kingma & Ba, 2015) with the standard defaults used by
/// the paper (`lr = 0.001`, `β₁ = 0.9`, `β₂ = 0.999`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f32,
    /// Exponential decay of the first moment.
    pub beta1: f32,
    /// Exponential decay of the second moment.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    step: u64,
}

impl Adam {
    /// Creates Adam with the given learning rate and default betas.
    pub fn new(learning_rate: f32) -> Self {
        Self { learning_rate, beta1: 0.9, beta2: 0.999, eps: 1e-8, step: 0 }
    }

    /// The Adam configuration used by the paper (learning rate 0.001).
    pub fn paper() -> Self {
        Self::new(1e-3)
    }

    /// Number of update steps performed so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one update step to every parameter using its accumulated
    /// gradient, then leaves the gradients untouched (call `zero_grad` on the
    /// model before the next backward pass).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.step += 1;
        let t = self.step as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for param in params.iter_mut() {
            for i in 0..param.value.len() {
                let g = param.grad.data()[i];
                let m = self.beta1 * param.m.data()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * param.v.data()[i] + (1.0 - self.beta2) * g * g;
                param.m.data_mut()[i] = m;
                param.v.data_mut()[i] = v;
                let m_hat = m / bias1;
                let v_hat = v / bias2;
                param.value.data_mut()[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum; the `m` buffer of the
    /// parameter is reused as the velocity).
    pub momentum: f32,
}

impl Sgd {
    /// Creates SGD without momentum.
    pub fn new(learning_rate: f32) -> Self {
        Self { learning_rate, momentum: 0.0 }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(learning_rate: f32, momentum: f32) -> Self {
        Self { learning_rate, momentum }
    }

    /// Applies one update step.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        for param in params.iter_mut() {
            for i in 0..param.value.len() {
                let g = param.grad.data()[i];
                let update = if self.momentum > 0.0 {
                    let v = self.momentum * param.m.data()[i] + g;
                    param.m.data_mut()[i] = v;
                    v
                } else {
                    g
                };
                param.value.data_mut()[i] -= self.learning_rate * update;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Minimise f(x) = (x - 3)^2 with each optimiser; both must converge.
    fn quadratic_descent<F: FnMut(&mut [&mut Param])>(mut step: F, iterations: usize) -> f32 {
        let mut p = Param::new(Tensor::from_vec(vec![0.0], &[1]));
        for _ in 0..iterations {
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (x - 3.0);
            let mut refs = [&mut p];
            step(&mut refs);
        }
        p.value.data()[0]
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.1);
        let x = quadratic_descent(|p| adam.step(p), 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let x = quadratic_descent(|p| sgd.step(p), 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut sgd = Sgd::with_momentum(0.05, 0.9);
        let x = quadratic_descent(|p| sgd.step(p), 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn paper_adam_defaults() {
        let adam = Adam::paper();
        assert!((adam.learning_rate - 1e-3).abs() < 1e-9);
        assert!((adam.beta1 - 0.9).abs() < 1e-9);
        assert!((adam.beta2 - 0.999).abs() < 1e-9);
    }

    #[test]
    fn zero_gradient_means_no_update() {
        let mut adam = Adam::new(0.1);
        let mut p = Param::new(Tensor::from_vec(vec![1.5], &[1]));
        let mut refs = [&mut p];
        adam.step(&mut refs);
        assert!((p.value.data()[0] - 1.5).abs() < 1e-6);
    }
}
