//! Softmax cross-entropy loss (Equation 1 of the paper).

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Numerically stable softmax of one logit row.
pub fn softmax_row(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum.max(f32::MIN_POSITIVE)).collect()
}

/// Softmax cross-entropy loss over a batch of logits.
///
/// Combines the softmax layer and the cross-entropy of Equation 1 so that the
/// backward pass is the numerically well-behaved `softmax(logits) - onehot`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Creates the loss function.
    pub fn new() -> Self {
        Self
    }

    /// Computes the mean loss over the batch and the gradient with respect to
    /// the logits.
    ///
    /// `logits` must be `[batch, classes]`; `labels` holds one class index per
    /// batch row.
    ///
    /// # Panics
    ///
    /// Panics if the batch sizes differ or a label is out of range.
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        assert_eq!(logits.shape().len(), 2, "logits must be 2-D");
        let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
        assert_eq!(batch, labels.len(), "batch size mismatch");
        let mut grad = Tensor::zeros(logits.shape());
        let mut total_loss = 0.0f64;
        for (b, &label) in labels.iter().enumerate() {
            assert!(label < classes, "label {label} out of range for {classes} classes");
            let probs = softmax_row(&logits.row(b));
            total_loss += -(probs[label].max(1e-12).ln()) as f64;
            for (c, &p) in probs.iter().enumerate() {
                let indicator = if c == label { 1.0 } else { 0.0 };
                grad.set2(b, c, (p - indicator) / batch as f32);
            }
        }
        ((total_loss / batch as f64) as f32, grad)
    }

    /// Computes only the mean loss (no gradient), e.g. for validation.
    pub fn loss(&self, logits: &Tensor, labels: &[usize]) -> f32 {
        self.loss_and_grad(logits, labels).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax_row(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax_row(&[1000.0, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn perfect_prediction_has_small_loss() {
        let loss_fn = CrossEntropyLoss::new();
        let logits = Tensor::from_rows(&[vec![10.0, -10.0], vec![-10.0, 10.0]]);
        let (loss, grad) = loss_fn.loss_and_grad(&logits, &[0, 1]);
        assert!(loss < 1e-3);
        assert!(grad.max_abs() < 1e-3);
    }

    #[test]
    fn uniform_logits_loss_is_log_classes() {
        let loss_fn = CrossEntropyLoss::new();
        let logits = Tensor::from_rows(&[vec![0.0, 0.0]]);
        let loss = loss_fn.loss(&logits, &[1]);
        assert!((loss - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let loss_fn = CrossEntropyLoss::new();
        let logits = Tensor::from_rows(&[vec![0.3, -0.7, 1.2], vec![0.1, 0.0, -0.5]]);
        let labels = [2usize, 0];
        let (_, grad) = loss_fn.loss_and_grad(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut plus = logits.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[idx] -= eps;
            let numeric =
                (loss_fn.loss(&plus, &labels) - loss_fn.loss(&minus, &labels)) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: numeric {numeric} vs analytic {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_label_panics() {
        CrossEntropyLoss::new().loss(&Tensor::from_rows(&[vec![0.0, 0.0]]), &[5]);
    }
}
