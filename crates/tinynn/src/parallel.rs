//! Deterministic work splitting across OS threads.
//!
//! The offline build has no `rayon`, so heavy loops fan out with
//! [`std::thread::scope`] instead: contiguous chunks of the output buffer are
//! handed to short-lived worker threads. Splits are purely a function of the
//! input size and thread count — never of timing — so results are
//! reproducible run to run.
//!
//! The thread count defaults to [`std::thread::available_parallelism`] and
//! can be pinned with the `TINYNN_THREADS` environment variable (`1` forces
//! the sequential path everywhere).

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// `true` on threads that are already workers of an enclosing parallel
    /// region (ours or a caller's): nested fan-out would oversubscribe the
    /// cores and defeat thread-local buffer reuse, so such threads stay
    /// sequential.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as a parallel-region worker until the returned
/// guard is dropped; while marked, [`thread_count_for`] answers `1` so any
/// nested tinynn fan-out runs inline.
///
/// Callers that spread tinynn work across their own threads (e.g. the
/// locator's sliding-window shards) should hold one of these per worker.
pub fn serial_region() -> SerialRegionGuard {
    let prev = IN_WORKER.with(|f| f.replace(true));
    SerialRegionGuard { prev }
}

/// RAII guard of [`serial_region`]; restores the previous marking on drop.
#[must_use = "the serial region ends when the guard is dropped"]
pub struct SerialRegionGuard {
    prev: bool,
}

impl Drop for SerialRegionGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_WORKER.with(|f| f.set(prev));
    }
}

/// Parses a `TINYNN_THREADS` value: a positive thread count, or a reason
/// the override cannot be honoured.
fn parse_thread_override(value: &str) -> Result<usize, &'static str> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err("zero threads is impossible; use 1 to force sequential"),
        Ok(n) => Ok(n),
        Err(_) => Err("not an unsigned integer"),
    }
}

/// Maximum threads the library will ever use.
pub fn max_threads() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        if let Ok(v) = std::env::var("TINYNN_THREADS") {
            match parse_thread_override(&v) {
                Ok(n) => return n,
                Err(why) => {
                    // An operator who set the variable expects it to act;
                    // ignoring it silently would hide a deployment typo.
                    eprintln!(
                        "tinynn: ignoring TINYNN_THREADS={v:?} ({why}); \
                         falling back to available parallelism"
                    );
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Picks a thread count for a loop of `items` units costing `flops` total:
/// `1` (sequential) unless the work exceeds `min_flops`, there is more than
/// one item and one core, and the current thread is not itself already a
/// parallel-region worker.
pub fn thread_count_for(items: usize, flops: usize, min_flops: usize) -> usize {
    if flops < min_flops || IN_WORKER.with(|f| f.get()) {
        return 1;
    }
    max_threads().min(items).max(1)
}

/// Splits `out` into per-item chunks of `item_len` and processes contiguous
/// runs of items on up to `threads` scoped threads.
///
/// `f` is called as `f(item_index, item_chunk)` for every item; with
/// `threads <= 1` it runs inline in item order. The assignment of items to
/// threads is deterministic.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `item_len`.
pub fn for_each_item_mut<F>(out: &mut [f32], item_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(item_len > 0, "item_len must be non-zero");
    assert_eq!(out.len() % item_len, 0, "output not a multiple of item_len");
    let items = out.len() / item_len;
    if threads <= 1 || items <= 1 {
        for (i, chunk) in out.chunks_mut(item_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let per_thread = items.div_ceil(threads.min(items));
    std::thread::scope(|scope| {
        for (run_idx, run) in out.chunks_mut(per_thread * item_len).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let _serial = serial_region();
                for (offset, chunk) in run.chunks_mut(item_len).enumerate() {
                    f(run_idx * per_thread + offset, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let item_len = 7;
        let items = 23;
        let mut seq = vec![0.0f32; item_len * items];
        let mut par = vec![0.0f32; item_len * items];
        let fill = |i: usize, chunk: &mut [f32]| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 100 + j) as f32;
            }
        };
        for_each_item_mut(&mut seq, item_len, 1, fill);
        for_each_item_mut(&mut par, item_len, 4, fill);
        assert_eq!(seq, par);
    }

    #[test]
    fn covers_every_item_exactly_once() {
        let mut out = vec![0.0f32; 12];
        for_each_item_mut(&mut out, 3, 3, |_i, chunk| {
            for v in chunk.iter_mut() {
                *v += 1.0;
            }
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn thread_count_gates_on_flops() {
        assert_eq!(thread_count_for(8, 10, 1000), 1);
        assert!(thread_count_for(8, 10_000, 1000) >= 1);
    }

    #[test]
    fn serial_region_disables_nested_fan_out() {
        {
            let _guard = serial_region();
            assert_eq!(thread_count_for(8, 1 << 30, 1), 1);
            // Nested guards restore correctly.
            {
                let _inner = serial_region();
            }
            assert_eq!(thread_count_for(8, 1 << 30, 1), 1);
        }
        // Dropping the guard restores the unrestricted count.
        assert_eq!(thread_count_for(8, 1 << 30, 1), max_threads().min(8));
    }

    #[test]
    fn workers_are_marked_serial() {
        // Each spawned worker must see the serial flag so nested fan-out
        // stays inline (recorded as 1.0 = serial, 2.0 = would fan out).
        let mut out = vec![0.0f32; 4];
        for_each_item_mut(&mut out, 1, 4, |_i, chunk| {
            chunk[0] = if thread_count_for(8, 1 << 30, 1) == 1 { 1.0 } else { 2.0 };
        });
        assert_eq!(out, vec![1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "multiple of item_len")]
    fn misaligned_output_panics() {
        let mut out = vec![0.0f32; 10];
        for_each_item_mut(&mut out, 3, 1, |_, _| {});
    }

    #[test]
    fn thread_override_parse_paths() {
        // Valid counts pass through, whitespace-tolerantly.
        assert_eq!(parse_thread_override("1"), Ok(1));
        assert_eq!(parse_thread_override(" 8\n"), Ok(8));
        // Zero and malformed values are rejected (and `max_threads` then
        // warns and falls back to available parallelism rather than
        // silently pinning to one thread).
        assert!(parse_thread_override("0").is_err());
        assert!(parse_thread_override("").is_err());
        assert!(parse_thread_override("four").is_err());
        assert!(parse_thread_override("-2").is_err());
        assert!(parse_thread_override("3.5").is_err());
    }
}
