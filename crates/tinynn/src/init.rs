//! Weight initialisation (He / Xavier uniform) with a deterministic RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// He-uniform initialisation for layers followed by ReLU:
/// samples from `U(-limit, limit)` with `limit = sqrt(6 / fan_in)`.
pub fn he_uniform(shape: &[usize], fan_in: usize, seed: u64) -> Tensor {
    let limit = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform(shape, -limit, limit, seed)
}

/// Xavier/Glorot-uniform initialisation:
/// `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(shape, -limit, limit, seed)
}

/// Uniform initialisation in `[low, high)`.
pub fn uniform(shape: &[usize], low: f32, high: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(low..high)).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = he_uniform(&[4, 4], 4, 7);
        let b = he_uniform(&[4, 4], 4, 7);
        assert_eq!(a, b);
        let c = he_uniform(&[4, 4], 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn he_limit_respected() {
        let t = he_uniform(&[100], 10, 3);
        let limit = (6.0f32 / 10.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= limit));
        // Not all identical.
        assert!(t.data().iter().any(|&v| (v - t.data()[0]).abs() > 1e-6));
    }

    #[test]
    fn xavier_limit_respected() {
        let t = xavier_uniform(&[50], 5, 7, 11);
        let limit = (6.0f32 / 12.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= limit));
    }
}
