//! Trainable parameters: value, gradient and the Adam moment buffers.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// A trainable parameter tensor with its gradient accumulator and the
/// first/second-moment buffers used by the Adam optimiser.
///
/// Keeping the optimiser state inside the parameter avoids any fragile
/// "parameter identity" bookkeeping in the optimiser itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Adam first-moment estimate.
    pub m: Tensor,
    /// Adam second-moment estimate.
    pub v: Tensor,
}

impl Param {
    /// Wraps an initial value into a parameter with zeroed gradient/moments.
    pub fn new(value: Tensor) -> Self {
        let shape = value.shape().to_vec();
        Self {
            value,
            grad: Tensor::zeros(&shape),
            m: Tensor::zeros(&shape),
            v: Tensor::zeros(&shape),
        }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` if the parameter holds no values.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_moments() {
        let p = Param::new(Tensor::from_vec(vec![1.0, -2.0], &[2]));
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
        assert_eq!(p.m.data(), &[0.0, 0.0]);
        assert_eq!(p.v.data(), &[0.0, 0.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::zeros(&[3]));
        p.grad.data_mut()[1] = 4.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0, 0.0]);
    }
}
