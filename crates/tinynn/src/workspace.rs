//! Per-call scratch state for `&self` forward/backward passes.
//!
//! Layers used to own their backward caches (and the im2col scratch lived in
//! a thread-local), which forced `forward` to take `&mut self` and made a
//! trained network impossible to share across threads without cloning its
//! weights. A [`Workspace`] moves every piece of per-call state out of the
//! layers:
//!
//! * a **cache stack**: during a training forward every layer pushes exactly
//!   one [`LayerCache`] entry; `backward` pops them in reverse. Because
//!   backward traverses the network in exactly the reverse order of forward,
//!   a LIFO stack needs no layer identity bookkeeping at all. Inference
//!   (`training == false`) pushes nothing.
//! * **scratch buffers** — the f32 im2col pair (`col`, `dcol`), the packed
//!   weight-panel buffer (`pack`, rebuilt per layer call and reused by the
//!   register-tiled GEMM kernels) and the quantised-path buffers (`qx`
//!   activation codes, `qcol` channels-last windows, `qrow`/`qscales`
//!   per-row staging) — reused across layers and calls, so steady-state
//!   inference performs no allocation for the lowerings;
//! * an **output-activation arena**: a small free list of recycled tensor
//!   storage. Layers draw their outputs from [`Workspace::uninit_tensor`]
//!   and sequential containers hand dead intermediates back through
//!   [`Workspace::recycle`], so after warm-up a full inference forward pass
//!   performs **zero heap allocations** — [`Workspace::arena_misses`]
//!   counts the allocations the arena could not serve and must stop growing
//!   once the pool is warm.
//!
//! A workspace is cheap to create (empty vectors) and grows to the high-water
//! mark of the network it serves. One workspace serves one thread; parallel
//! scoring shares a single immutable network and gives every thread its own
//! workspace.

use crate::tensor::Tensor;

/// Upper bound on the number of buffers the arena retains; beyond it the
/// smallest buffer is evicted, so a workspace never hoards more storage
/// than the widest pass it served needs.
const ARENA_SLOTS: usize = 16;

/// Per-call (and per-thread) scratch for forward/backward passes: the
/// backward cache stack, reusable lowering/packing buffers and the
/// output-activation arena.
///
/// See the [module documentation](self) for the design rationale.
#[derive(Debug, Default)]
pub struct Workspace {
    stack: Vec<LayerCache>,
    /// im2col lowering buffer, reused across layers of one pass.
    pub(crate) col: Vec<f32>,
    /// Column-gradient buffer of the convolution backward pass.
    pub(crate) dcol: Vec<f32>,
    /// Packed weight panels of the register-tiled GEMM kernels
    /// ([`crate::matmul::pack_lhs`] / [`crate::matmul::pack_rhs_t`]),
    /// rebuilt per layer call (weights may change between calls during
    /// training) into this one reused buffer.
    pub(crate) pack: Vec<f32>,
    /// Quantised activation buffer of the quantised layers (`i16` codes of
    /// the current input), reused across layers and calls.
    pub(crate) qx: Vec<i16>,
    /// Channels-last zero-padded window buffer of
    /// [`crate::qlayers::QuantizedConv1d`] (built by its `transpose_pad_q`).
    pub(crate) qcol: Vec<i16>,
    /// Single-row staging of the quantised linear layer (codes of one batch
    /// row before they are appended to `qx`).
    pub(crate) qrow: Vec<i16>,
    /// Per-row activation scales of the quantised linear layer.
    pub(crate) qscales: Vec<f32>,
    /// `i64` per-channel accumulators of the integer global-average-pooling
    /// reduction of the fixed-point chain.
    pub(crate) qacc: Vec<i64>,
    /// Free list of `i16` code buffers — the activation arena of the
    /// fixed-point chain, where whole inter-layer activations are `i16`
    /// codes instead of `f32` tensors ([`Self::take_i16`] /
    /// [`Self::recycle_i16`]).
    qpool: Vec<Vec<i16>>,
    /// Output-activation free list: recycled `(data, shape)` tensor storage.
    arena: Vec<(Vec<f32>, Vec<usize>)>,
    /// Number of [`Self::uninit_tensor`] calls the arena could not serve
    /// from a recycled buffer of sufficient capacity.
    arena_misses: usize,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a tensor of the given shape whose element values are
    /// **unspecified** (stale data from a recycled buffer, or zeros for a
    /// fresh one) — the caller must overwrite every element. Served from
    /// the output-activation arena when a recycled buffer of sufficient
    /// capacity exists (best fit), so a warm workspace allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn uninit_tensor(&mut self, shape: &[usize]) -> Tensor {
        assert!(!shape.is_empty(), "tensor shape must not be empty");
        let len = shape.iter().product::<usize>();
        let mut best: Option<(usize, usize)> = None;
        for (idx, (data, _)) in self.arena.iter().enumerate() {
            let cap = data.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((idx, cap));
            }
        }
        let (mut data, mut shape_buf) = match best {
            Some((idx, _)) => self.arena.swap_remove(idx),
            None => {
                self.arena_misses += 1;
                (Vec::with_capacity(len), Vec::with_capacity(shape.len()))
            }
        };
        data.resize(len, 0.0);
        shape_buf.clear();
        shape_buf.extend_from_slice(shape);
        Tensor::from_parts(data, shape_buf)
    }

    /// Returns a dead tensor's storage to the output-activation arena so a
    /// later [`Self::uninit_tensor`] can reuse it. When the arena is full,
    /// the smallest retained buffer is evicted (or the incoming one dropped
    /// if it is smaller still).
    pub fn recycle(&mut self, tensor: Tensor) {
        let (data, shape) = tensor.into_parts();
        if data.capacity() == 0 {
            return;
        }
        if self.arena.len() >= ARENA_SLOTS {
            let (smallest, cap) = self
                .arena
                .iter()
                .enumerate()
                .map(|(i, (d, _))| (i, d.capacity()))
                .min_by_key(|&(_, c)| c)
                .expect("arena is non-empty");
            if cap >= data.capacity() {
                return;
            }
            self.arena.swap_remove(smallest);
        }
        self.arena.push((data, shape));
    }

    /// Zeroed `i64` scratch of `len` accumulators — the per-channel sums of
    /// the integer global-average-pooling reduction. The backing buffer
    /// grows to the high-water mark and is reused across calls.
    pub fn i64_scratch(&mut self, len: usize) -> &mut [i64] {
        if self.qacc.len() < len {
            self.qacc.resize(len, 0);
        }
        let scratch = &mut self.qacc[..len];
        scratch.fill(0);
        scratch
    }

    /// Hands out an `i16` code buffer of at least `len` elements (resized to
    /// `len`, element values **unspecified** — the caller must overwrite or
    /// zero every element it reads). Served best-fit from the `i16` free
    /// list; a miss allocates and advances [`Self::arena_misses`], so the
    /// zero-allocation pins cover the fixed-point chain too.
    pub fn take_i16(&mut self, len: usize) -> Vec<i16> {
        let mut best: Option<(usize, usize)> = None;
        for (idx, buf) in self.qpool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((idx, cap));
            }
        }
        let mut buf = match best {
            Some((idx, _)) => self.qpool.swap_remove(idx),
            None => {
                self.arena_misses += 1;
                Vec::with_capacity(len)
            }
        };
        buf.resize(len, 0);
        buf
    }

    /// Returns a dead `i16` code buffer to the free list (mirror of
    /// [`Self::recycle`]: beyond [`ARENA_SLOTS`] buffers the smallest is
    /// evicted, or the incoming one dropped if smaller still).
    pub fn recycle_i16(&mut self, buf: Vec<i16>) {
        if buf.capacity() == 0 {
            return;
        }
        if self.qpool.len() >= ARENA_SLOTS {
            let (smallest, cap) = self
                .qpool
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.capacity()))
                .min_by_key(|&(_, c)| c)
                .expect("i16 pool is non-empty");
            if cap >= buf.capacity() {
                return;
            }
            self.qpool.swap_remove(smallest);
        }
        self.qpool.push(buf);
    }

    /// Number of [`Self::uninit_tensor`] calls that had to allocate because
    /// the arena held no buffer of sufficient capacity. A warm steady-state
    /// inference loop must not advance this counter — the property the
    /// zero-allocation tests pin.
    pub fn arena_misses(&self) -> usize {
        self.arena_misses
    }

    /// Total bytes of scratch storage the workspace currently retains
    /// (lowering/packing buffers plus the arena). Stable across steady-state
    /// passes once warm.
    pub fn retained_bytes(&self) -> usize {
        let f32s = self.col.capacity() + self.dcol.capacity() + self.pack.capacity();
        let i16s = self.qx.capacity()
            + self.qcol.capacity()
            + self.qrow.capacity()
            + self.qpool.iter().map(|b| b.capacity()).sum::<usize>();
        let arena: usize = self
            .arena
            .iter()
            .map(|(d, s)| d.capacity() * 4 + s.capacity() * std::mem::size_of::<usize>())
            .sum();
        f32s * 4 + self.qscales.capacity() * 4 + i16s * 2 + self.qacc.capacity() * 8 + arena
    }

    /// Number of layer caches currently recorded (0 outside a training
    /// forward/backward pair; inference never records any).
    pub fn cache_depth(&self) -> usize {
        self.stack.len()
    }

    /// Drops every recorded layer cache (scratch buffers keep their
    /// capacity). Useful when a training forward was not followed by a
    /// matching backward.
    pub fn clear(&mut self) {
        self.stack.clear();
    }

    /// Records a layer cache during a training forward.
    pub(crate) fn push(&mut self, cache: LayerCache) {
        self.stack.push(cache);
    }

    /// Pops the most recent layer cache during backward.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty, i.e. `backward` was called without a
    /// preceding `forward` with `training == true`.
    pub(crate) fn pop(&mut self, layer: &str) -> LayerCache {
        self.stack
            .pop()
            .unwrap_or_else(|| panic!("{layer}: backward called before forward with training=true"))
    }
}

/// One layer's backward cache, pushed during a training forward.
#[derive(Debug, Clone)]
pub(crate) enum LayerCache {
    /// The layer input (Linear, Conv1d).
    Input(Tensor),
    /// The positive-input mask of a ReLU.
    Mask(Vec<bool>),
    /// Batch-normalisation statistics of one training batch.
    Bn {
        /// Normalised activations.
        x_hat: Tensor,
        /// Per-channel `1 / sqrt(var + eps)`.
        std_inv: Vec<f32>,
        /// Per-channel batch mean (committed to the running mean in
        /// backward).
        mean: Vec<f32>,
        /// Per-channel batch variance (committed to the running variance in
        /// backward).
        var: Vec<f32>,
    },
    /// Flat arg-max indices and input shape of a max-pooling layer.
    Argmax {
        /// Flat input index of the maximum of every pooling window.
        argmax: Vec<usize>,
        /// Shape of the pooled input.
        input_shape: Vec<usize>,
    },
    /// The input shape (global average pooling).
    Shape(Vec<usize>),
}

impl LayerCache {
    /// Debug name of the variant, used in cache-mismatch panics.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            LayerCache::Input(_) => "Input",
            LayerCache::Mask(_) => "Mask",
            LayerCache::Bn { .. } => "Bn",
            LayerCache::Argmax { .. } => "Argmax",
            LayerCache::Shape(_) => "Shape",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_lifo() {
        let mut ws = Workspace::new();
        ws.push(LayerCache::Shape(vec![1]));
        ws.push(LayerCache::Mask(vec![true]));
        assert_eq!(ws.cache_depth(), 2);
        assert_eq!(ws.pop("test").kind(), "Mask");
        assert_eq!(ws.pop("test").kind(), "Shape");
        assert_eq!(ws.cache_depth(), 0);
    }

    #[test]
    fn clear_drops_caches() {
        let mut ws = Workspace::new();
        ws.push(LayerCache::Shape(vec![2, 3]));
        ws.clear();
        assert_eq!(ws.cache_depth(), 0);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn pop_on_empty_stack_panics() {
        Workspace::new().pop("EmptyLayer");
    }

    #[test]
    fn i16_pool_reuses_buffers_without_allocating() {
        let mut ws = Workspace::new();
        let a = ws.take_i16(100);
        assert_eq!(a.len(), 100);
        assert_eq!(ws.arena_misses(), 1);
        ws.recycle_i16(a);
        let retained = ws.retained_bytes();
        assert!(retained >= 200, "recycled i16 storage must be counted");
        // A smaller request is served from the recycled buffer: no new miss,
        // no retained-bytes growth.
        let b = ws.take_i16(40);
        assert_eq!(b.len(), 40);
        assert_eq!(ws.arena_misses(), 1);
        ws.recycle_i16(b);
        assert_eq!(ws.retained_bytes(), retained);
    }

    #[test]
    fn i16_pool_is_bounded() {
        let mut ws = Workspace::new();
        // Fill past the slot cap; the pool must keep the largest buffers.
        for len in 1..=ARENA_SLOTS + 4 {
            ws.recycle_i16(Vec::with_capacity(len * 16));
        }
        let retained = ws.retained_bytes();
        // All retained buffers are among the largest; total bounded by the
        // slot cap times the largest buffer.
        assert!(retained <= ARENA_SLOTS * (ARENA_SLOTS + 4) * 16 * 2);
        // Recycling a tiny buffer into a full pool drops it.
        ws.recycle_i16(Vec::with_capacity(1));
        assert_eq!(ws.retained_bytes(), retained);
    }
}
