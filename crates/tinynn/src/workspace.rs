//! Per-call scratch state for `&self` forward/backward passes.
//!
//! Layers used to own their backward caches (and the im2col scratch lived in
//! a thread-local), which forced `forward` to take `&mut self` and made a
//! trained network impossible to share across threads without cloning its
//! weights. A [`Workspace`] moves every piece of per-call state out of the
//! layers:
//!
//! * a **cache stack**: during a training forward every layer pushes exactly
//!   one [`LayerCache`] entry; `backward` pops them in reverse. Because
//!   backward traverses the network in exactly the reverse order of forward,
//!   a LIFO stack needs no layer identity bookkeeping at all. Inference
//!   (`training == false`) pushes nothing.
//! * **scratch buffers** — the f32 im2col pair (`col`, `dcol`) and the
//!   quantised-path pair (`qx` activation codes, `qcol` channels-last
//!   windows) — reused across layers and calls, so steady-state inference
//!   performs no allocation for the lowerings.
//!
//! A workspace is cheap to create (empty vectors) and grows to the high-water
//! mark of the network it serves. One workspace serves one thread; parallel
//! scoring shares a single immutable network and gives every thread its own
//! workspace.

use crate::tensor::Tensor;

/// Per-call (and per-thread) scratch for forward/backward passes: the
/// backward cache stack plus reusable im2col buffers.
///
/// See the [module documentation](self) for the design rationale.
#[derive(Debug, Default)]
pub struct Workspace {
    stack: Vec<LayerCache>,
    /// im2col lowering buffer, reused across layers of one pass.
    pub(crate) col: Vec<f32>,
    /// Column-gradient buffer of the convolution backward pass.
    pub(crate) dcol: Vec<f32>,
    /// Quantised activation buffer of the quantised layers (`i16` codes of
    /// the current input), reused across layers and calls.
    pub(crate) qx: Vec<i16>,
    /// Channels-last zero-padded window buffer of
    /// [`crate::qlayers::QuantizedConv1d`] (built by its `transpose_pad_q`).
    pub(crate) qcol: Vec<i16>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of layer caches currently recorded (0 outside a training
    /// forward/backward pair; inference never records any).
    pub fn cache_depth(&self) -> usize {
        self.stack.len()
    }

    /// Drops every recorded layer cache (scratch buffers keep their
    /// capacity). Useful when a training forward was not followed by a
    /// matching backward.
    pub fn clear(&mut self) {
        self.stack.clear();
    }

    /// Records a layer cache during a training forward.
    pub(crate) fn push(&mut self, cache: LayerCache) {
        self.stack.push(cache);
    }

    /// Pops the most recent layer cache during backward.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty, i.e. `backward` was called without a
    /// preceding `forward` with `training == true`.
    pub(crate) fn pop(&mut self, layer: &str) -> LayerCache {
        self.stack
            .pop()
            .unwrap_or_else(|| panic!("{layer}: backward called before forward with training=true"))
    }
}

/// One layer's backward cache, pushed during a training forward.
#[derive(Debug, Clone)]
pub(crate) enum LayerCache {
    /// The layer input (Linear, Conv1d).
    Input(Tensor),
    /// The positive-input mask of a ReLU.
    Mask(Vec<bool>),
    /// Batch-normalisation statistics of one training batch.
    Bn {
        /// Normalised activations.
        x_hat: Tensor,
        /// Per-channel `1 / sqrt(var + eps)`.
        std_inv: Vec<f32>,
        /// Per-channel batch mean (committed to the running mean in
        /// backward).
        mean: Vec<f32>,
        /// Per-channel batch variance (committed to the running variance in
        /// backward).
        var: Vec<f32>,
    },
    /// Flat arg-max indices and input shape of a max-pooling layer.
    Argmax {
        /// Flat input index of the maximum of every pooling window.
        argmax: Vec<usize>,
        /// Shape of the pooled input.
        input_shape: Vec<usize>,
    },
    /// The input shape (global average pooling).
    Shape(Vec<usize>),
}

impl LayerCache {
    /// Debug name of the variant, used in cache-mismatch panics.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            LayerCache::Input(_) => "Input",
            LayerCache::Mask(_) => "Mask",
            LayerCache::Bn { .. } => "Bn",
            LayerCache::Argmax { .. } => "Argmax",
            LayerCache::Shape(_) => "Shape",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_lifo() {
        let mut ws = Workspace::new();
        ws.push(LayerCache::Shape(vec![1]));
        ws.push(LayerCache::Mask(vec![true]));
        assert_eq!(ws.cache_depth(), 2);
        assert_eq!(ws.pop("test").kind(), "Mask");
        assert_eq!(ws.pop("test").kind(), "Shape");
        assert_eq!(ws.cache_depth(), 0);
    }

    #[test]
    fn clear_drops_caches() {
        let mut ws = Workspace::new();
        ws.push(LayerCache::Shape(vec![2, 3]));
        ws.clear();
        assert_eq!(ws.cache_depth(), 0);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn pop_on_empty_stack_panics() {
        Workspace::new().pop("EmptyLayer");
    }
}
