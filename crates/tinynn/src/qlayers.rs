//! Inference-only quantised layer variants (`i8` weights, `f32` activations).
//!
//! Each quantised layer mirrors its `f32` counterpart behind the same
//! [`Layer`] trait, so a quantised network slots into every generic forward
//! path (sequential containers, shared-weight scoring) unchanged:
//!
//! * [`QuantizedConv1d`] — im2row on dynamically quantised `i16` activation
//!   codes, then the [`crate::matmul::matmul_q8`] integer dot-product GEMM
//!   with per-output-channel `i8` weights;
//! * [`QuantizedLinear`] — per-batch-row activation quantisation and the
//!   [`crate::matmul::matmul_q8_a_bt`] integer GEMM;
//! * [`QuantizedResidualBlock1d`] — the residual block with both
//!   convolutions (and the projection shortcut, when present) quantised.
//!
//! Two inference-graph folds keep the quantised path lean:
//!
//! * **Batch-norm folding** — at inference a batch-norm layer is a
//!   per-channel affine `y = s·x + t`; [`QuantizedConv1d::from_conv_folded`]
//!   absorbs it into the convolution's weights and bias *before*
//!   quantisation, so the quantised network contains no separate batch-norm
//!   passes at all (per-channel weight scales absorb the rescaling
//!   exactly).
//! * **ReLU fusing** — a following ReLU becomes an in-place clamp on the
//!   layer output, saving one full tensor allocation and copy per layer.
//!
//! Every layer offers **two forward paths**:
//!
//! * the dynamic [`Layer`] path above (`f32` in, `f32` out, per-call
//!   activation scales) — the calibration and parity-reference path;
//! * the **fixed-point path** (`forward_fixed` / `forward_fixed_codes`):
//!   once static activation scales are calibrated
//!   ([`QuantizedConv1d::set_fixed_point`] builds a
//!   [`crate::quant::QuantPlan`]), activations stay `i16` codes *between*
//!   layers ([`crate::quant::QuantActs`]), each layer is one fused
//!   requantising GEMM ([`matmul::matmul_q8_requant_sliding`]) writing
//!   position-major codes directly into the next layer's channels-last
//!   window layout, ReLU is the output clamp and the residual add is an
//!   integer add of same-grid codes. No `f32` roundtrip, scale scan or
//!   transpose exists between layers — this is the serving hot path.
//!
//! Quantised layers are **inference-only**: `forward` with `training ==
//! true` and `backward` panic. They hold no gradient or optimiser state —
//! quantise a trained `f32` network, never train a quantised one.

use crate::layers::{forward_consuming, BatchNorm1d, Conv1d, Layer, Linear, ResidualBlock1d};
use crate::matmul;
use crate::quant::{
    quantize_activations_into, QuantActs, QuantPlan, QuantizedGemm, Requantizer, ACT_QMAX,
};
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Panic helper for the unsupported training entry points.
fn inference_only(layer: &str) -> ! {
    panic!("{layer} is inference-only: quantise a trained f32 network instead of training it")
}

/// Re-lays one quantised `[C, len]` signal as a zero-padded channels-last
/// buffer: row `r` of the `[len + kernel - 1, C]` output holds the codes of
/// sample `r - pad` across all channels (zeros where the index overhangs
/// the signal).
///
/// In this orientation the receptive field of output position `j` is the
/// contiguous slice `xt[j*C .. (j + kernel)*C]` — sample-major,
/// channel-minor, exactly the `[kernel, in_c]` order the permuted quantised
/// weight rows use — so the convolution needs **no im2col/im2row lowering
/// at all**: the GEMM ([`matmul::matmul_q8_sliding`]) walks overlapping
/// windows of this one small buffer. The build moves `C*len` codes (one
/// transpose pass), a factor `kernel` less data than an im2col-style
/// lowering.
fn transpose_pad_q(
    xt: &mut Vec<i16>,
    x: &[i16],
    channels: usize,
    len: usize,
    kernel: usize,
    pad: usize,
) {
    let rows = len + kernel - 1;
    xt.resize(rows * channels, 0);
    xt[..pad * channels].fill(0);
    xt[(pad + len) * channels..].fill(0);
    let body = &mut xt[pad * channels..(pad + len) * channels];
    if channels == 1 {
        body.copy_from_slice(x);
    } else {
        for (c, x_c) in x.chunks_exact(len).enumerate() {
            for (j, &v) in x_c.iter().enumerate() {
                body[j * channels + c] = v;
            }
        }
    }
}

/// Permutes a `[out, in_c, kernel]` weight matrix's columns from the
/// canonical `c*kernel + t` order to the sample-major `t*in_c + c` order of
/// the channels-last activation windows (see [`transpose_pad_q`]). A pure
/// per-row column permutation: the per-row quantisation scales and the
/// serialised block geometry are unaffected, and the integer dot products
/// are exact whatever the summation order, so scores are bit-identical to a
/// canonical-order evaluation.
fn permute_weights_sample_major(weights: &[f32], in_c: usize, kernel: usize) -> Vec<f32> {
    let ck = in_c * kernel;
    let mut permuted = vec![0.0f32; weights.len()];
    for (row, dst) in weights.chunks_exact(ck).zip(permuted.chunks_exact_mut(ck)) {
        for c in 0..in_c {
            for t in 0..kernel {
                dst[t * in_c + c] = row[c * kernel + t];
            }
        }
    }
    permuted
}

/// In-place fused ReLU on a freshly produced output block.
#[inline]
fn relu_in_place(out: &mut [f32]) {
    for v in out.iter_mut() {
        *v = v.max(0.0);
    }
}

// ---------------------------------------------------------------------------
// QuantizedConv1d
// ---------------------------------------------------------------------------

/// Quantised 1-D convolution with stride 1 and "same" zero padding.
///
/// Weights are the per-output-channel `i8` block of a trained [`Conv1d`]
/// (optionally with a following batch-norm folded in); activations are
/// quantised to `i16` per batch item (one dynamic scale), so the conv
/// lowers to an integer GEMM with exact `i32` panel accumulation.
#[derive(Debug, Clone)]
pub struct QuantizedConv1d {
    gemm: QuantizedGemm,
    in_channels: usize,
    out_channels: usize,
    kernel_size: usize,
    fused_relu: bool,
    /// Fixed-point execution plan (set by [`Self::set_fixed_point`] once the
    /// activation scales are calibrated). `None` means only the dynamic
    /// [`Layer`] path is available.
    plan: Option<QuantPlan>,
}

impl QuantizedConv1d {
    /// Quantises a trained convolution layer as-is (no folds).
    pub fn from_conv(conv: &Conv1d) -> Self {
        let (in_c, out_c, k) = (conv.in_channels(), conv.out_channels(), conv.kernel_size());
        let permuted = permute_weights_sample_major(conv.weight().data(), in_c, k);
        Self {
            gemm: QuantizedGemm::from_f32(&permuted, conv.bias().data(), out_c, in_c * k),
            in_channels: in_c,
            out_channels: out_c,
            kernel_size: k,
            fused_relu: false,
            plan: None,
        }
    }

    /// Quantises a trained convolution with the *following* batch-norm
    /// folded into the weights and bias (`w' = s_c · w`, `b' = s_c · b +
    /// t_c` from [`BatchNorm1d::inference_affine`]), optionally fusing the
    /// ReLU that follows the batch-norm. The folded network computes the
    /// same function as conv → bn (→ relu) up to float reassociation, one
    /// layer at a time.
    ///
    /// # Panics
    ///
    /// Panics if the batch-norm channel count does not match the
    /// convolution's output channels.
    pub fn from_conv_folded(conv: &Conv1d, bn: &BatchNorm1d, fused_relu: bool) -> Self {
        assert_eq!(bn.channels(), conv.out_channels(), "conv/bn channel mismatch");
        let (scale, shift) = bn.inference_affine();
        let (in_c, out_c, k) = (conv.in_channels(), conv.out_channels(), conv.kernel_size());
        let cols = in_c * k;
        let mut folded_w = permute_weights_sample_major(conv.weight().data(), in_c, k);
        for (o, row) in folded_w.chunks_mut(cols).enumerate() {
            for w in row.iter_mut() {
                *w *= scale[o];
            }
        }
        let folded_b: Vec<f32> =
            conv.bias().data().iter().enumerate().map(|(o, &b)| b * scale[o] + shift[o]).collect();
        Self {
            gemm: QuantizedGemm::from_f32(&folded_w, &folded_b, out_c, cols),
            in_channels: in_c,
            out_channels: out_c,
            kernel_size: k,
            fused_relu,
            plan: None,
        }
    }

    /// The quantised weight block (`[out_c, in_c·kernel]`).
    pub fn gemm(&self) -> &QuantizedGemm {
        &self.gemm
    }

    /// Mutable access to the quantised weight block (model loading).
    pub fn gemm_mut(&mut self) -> &mut QuantizedGemm {
        &mut self.gemm
    }

    /// Kernel size.
    pub fn kernel_size(&self) -> usize {
        self.kernel_size
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// `true` if a following ReLU is fused into this layer's output.
    pub fn fused_relu(&self) -> bool {
        self.fused_relu
    }

    fn pad_left(&self) -> usize {
        (self.kernel_size - 1) / 2
    }

    /// Builds the fixed-point execution plan of this layer for calibrated
    /// input/output activation grids, enabling [`Self::forward_fixed`]. The
    /// layer's fused ReLU becomes the plan's output clamp.
    pub fn set_fixed_point(&mut self, in_scale: f32, out_scale: f32) {
        self.plan = Some(QuantPlan::new(&self.gemm, in_scale, out_scale, self.fused_relu));
    }

    /// The fixed-point plan, when one has been built.
    pub fn plan(&self) -> Option<&QuantPlan> {
        self.plan.as_ref()
    }

    /// Fixed-point forward pass: `i16` activation codes in, `i16` codes out,
    /// one fused requantising GEMM per batch item and **no `f32` value
    /// anywhere** — no dynamic scale scan, no dequantise/requantise
    /// roundtrip, no transpose (the GEMM writes position-major, which *is*
    /// the channels-last body layout `out` hands the next layer).
    ///
    /// `out` must be pre-shaped by the caller (same batch and length,
    /// `out_channels` channels, pad geometry covering every consumer); its
    /// pads are zeroed and its scale is set to the plan's output scale.
    ///
    /// # Panics
    ///
    /// Panics if no plan is set ([`Self::set_fixed_point`]), if a geometry
    /// field disagrees, or if `x`'s grid is not the plan's input grid.
    pub fn forward_fixed(&self, x: &QuantActs, out: &mut QuantActs) {
        let plan = self.plan.as_ref().expect("set_fixed_point before forward_fixed");
        assert_eq!(x.channels, self.in_channels, "input channel mismatch");
        assert_eq!(out.channels, self.out_channels, "output channel mismatch");
        assert_eq!(x.batch, out.batch, "batch mismatch");
        assert_eq!(x.len, out.len, "length mismatch (stride-1 same conv)");
        assert_eq!(
            plan.in_scale.to_bits(),
            x.scale.to_bits(),
            "input codes are on a different grid than the plan was built for"
        );
        let p = self.pad_left();
        assert!(x.pad_left >= p, "input pad {} cannot serve kernel pad {p}", x.pad_left);
        let offset = x.pad_left - p;
        assert!(
            x.rows >= offset + x.len - 1 + self.kernel_size,
            "input rows {} cannot cover {} windows of kernel {}",
            x.rows,
            x.len,
            self.kernel_size
        );
        let (in_c, out_c, ck) = (self.in_channels, self.out_channels, self.gemm.cols());
        out.scale = plan.out_scale;
        out.zero_pads();
        let span = (x.len - 1) * in_c + ck;
        for b in 0..x.batch {
            let src_start = b * x.rows * in_c + offset * in_c;
            let src = &x.codes[src_start..src_start + span];
            let dst_start = b * out.rows * out_c + out.pad_left * out_c;
            let dst = &mut out.codes[dst_start..dst_start + x.len * out_c];
            // SIMD fast path on the packed weights; scalar fallback computes
            // the same codes bit for bit.
            if !matmul::matmul_q8_requant_sliding_packed(
                dst,
                self.gemm.packed16(),
                &plan.bias_q,
                &plan.mults_i32,
                plan.shift,
                src,
                out_c,
                ck,
                x.len,
                in_c,
                plan.lo,
                plan.hi,
            ) {
                matmul::matmul_q8_requant_sliding(
                    dst,
                    self.gemm.data16(),
                    &plan.bias_q,
                    &plan.mults,
                    src,
                    out_c,
                    ck,
                    x.len,
                    in_c,
                    plan.lo,
                    plan.hi,
                );
            }
        }
    }
}

impl Layer for QuantizedConv1d {
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        if training {
            inference_only("QuantizedConv1d");
        }
        assert_eq!(input.shape().len(), 3, "QuantizedConv1d expects a 3-D input [B, C, N]");
        assert_eq!(input.shape()[1], self.in_channels, "QuantizedConv1d channel mismatch");
        let (batch, len) = (input.shape()[0], input.shape()[2]);
        let (in_c, out_c, k) = (self.in_channels, self.out_channels, self.kernel_size);
        let ck = in_c * k;
        let pad = self.pad_left();
        let mut out = ws.uninit_tensor(&[batch, out_c, len]);
        let x = input.data();
        let bias = self.gemm.bias();
        for (b, out_b) in out.data_mut().chunks_mut(out_c * len).enumerate() {
            // Quantise the item once ([C, len] codes), then re-lay the codes
            // channels-last with the padding baked in: every output
            // position's receptive field becomes one contiguous slice, so
            // the GEMM slides over this buffer with no lowering matrix.
            let x_scale =
                quantize_activations_into(&x[b * in_c * len..(b + 1) * in_c * len], &mut ws.qx);
            transpose_pad_q(&mut ws.qcol, &ws.qx, in_c, len, k, pad);
            for (oc, out_row) in out_b.chunks_mut(len).enumerate() {
                out_row.fill(bias[oc]);
            }
            matmul::matmul_q8_sliding(
                out_b,
                self.gemm.data16(),
                self.gemm.scales(),
                &ws.qcol,
                x_scale,
                out_c,
                ck,
                len,
                in_c,
            );
            if self.fused_relu {
                relu_in_place(out_b);
            }
        }
        out
    }

    fn backward(&mut self, _grad_output: &Tensor, _ws: &mut Workspace) -> Tensor {
        inference_only("QuantizedConv1d")
    }
}

// ---------------------------------------------------------------------------
// QuantizedLinear
// ---------------------------------------------------------------------------

/// Quantised fully connected layer: `y = x Wᵀ + b` with `W` stored as
/// per-output-channel `i8` rows and `x` quantised to `i16` per batch row.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    gemm: QuantizedGemm,
    in_features: usize,
    out_features: usize,
    fused_relu: bool,
    /// Fixed-point execution plan (set by [`Self::set_fixed_point`]).
    plan: Option<QuantPlan>,
}

impl QuantizedLinear {
    /// Quantises a trained fully connected layer.
    pub fn from_linear(linear: &Linear) -> Self {
        Self {
            gemm: QuantizedGemm::from_tensor(linear.weight(), linear.bias().data()),
            in_features: linear.in_features(),
            out_features: linear.out_features(),
            fused_relu: false,
            plan: None,
        }
    }

    /// Fuses a following ReLU into this layer's output.
    pub fn with_fused_relu(mut self, fused_relu: bool) -> Self {
        self.fused_relu = fused_relu;
        self
    }

    /// The quantised weight block (`[out, in]`).
    pub fn gemm(&self) -> &QuantizedGemm {
        &self.gemm
    }

    /// Mutable access to the quantised weight block (model loading).
    pub fn gemm_mut(&mut self) -> &mut QuantizedGemm {
        &mut self.gemm
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// `true` if a following ReLU is fused into this layer's output.
    pub fn fused_relu(&self) -> bool {
        self.fused_relu
    }

    /// Builds the fixed-point execution plan for calibrated input/output
    /// activation grids, enabling [`Self::forward_fixed_codes`].
    pub fn set_fixed_point(&mut self, in_scale: f32, out_scale: f32) {
        self.plan = Some(QuantPlan::new(&self.gemm, in_scale, out_scale, self.fused_relu));
    }

    /// Fixed-point forward pass on raw codes: `x` holds `[batch,
    /// in_features]` `i16` activation codes on the plan's input grid, `out`
    /// receives `[batch, out_features]` codes on its output grid. The row
    /// dot products, bias add, requantisation and (fused-ReLU) clamp are one
    /// kernel call — a linear layer is the sliding GEMM with non-overlapping
    /// windows (`stride == k`).
    ///
    /// # Panics
    ///
    /// Panics if no plan is set or a slice length disagrees.
    pub fn forward_fixed_codes(&self, x: &[i16], batch: usize, out: &mut [i16]) {
        let plan = self.plan.as_ref().expect("set_fixed_point before forward_fixed_codes");
        assert_eq!(x.len(), batch * self.in_features, "input must be batch x in_features");
        assert_eq!(out.len(), batch * self.out_features, "output must be batch x out_features");
        // SIMD fast path on the packed weights; scalar fallback computes the
        // same codes bit for bit.
        if !matmul::matmul_q8_requant_sliding_packed(
            out,
            self.gemm.packed16(),
            &plan.bias_q,
            &plan.mults_i32,
            plan.shift,
            x,
            self.out_features,
            self.in_features,
            batch,
            self.in_features,
            plan.lo,
            plan.hi,
        ) {
            matmul::matmul_q8_requant_sliding(
                out,
                self.gemm.data16(),
                &plan.bias_q,
                &plan.mults,
                x,
                self.out_features,
                self.in_features,
                batch,
                self.in_features,
                plan.lo,
                plan.hi,
            );
        }
    }
}

impl Layer for QuantizedLinear {
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        if training {
            inference_only("QuantizedLinear");
        }
        assert_eq!(input.shape().len(), 2, "QuantizedLinear expects a 2-D input");
        assert_eq!(input.shape()[1], self.in_features, "QuantizedLinear feature mismatch");
        let batch = input.shape()[0];
        let mut out = ws.uninit_tensor(&[batch, self.out_features]);
        // Per-row activation scales: every batch row is quantised on its own
        // grid, so one outlier row cannot coarsen the others (and window
        // scores stay independent of batch composition). Staging lives in
        // the workspace, so a warm pass allocates nothing.
        ws.qx.clear();
        ws.qscales.clear();
        for row in input.data().chunks(self.in_features) {
            let scale = quantize_activations_into(row, &mut ws.qrow);
            ws.qscales.push(scale);
            let qrow = &ws.qrow;
            ws.qx.extend_from_slice(qrow);
        }
        for row in out.data_mut().chunks_mut(self.out_features) {
            row.copy_from_slice(self.gemm.bias());
        }
        matmul::matmul_q8_a_bt(
            out.data_mut(),
            &ws.qx,
            &ws.qscales,
            self.gemm.data16(),
            self.gemm.scales(),
            batch,
            self.in_features,
            self.out_features,
        );
        if self.fused_relu {
            relu_in_place(out.data_mut());
        }
        out
    }

    fn backward(&mut self, _grad_output: &Tensor, _ws: &mut Workspace) -> Tensor {
        inference_only("QuantizedLinear")
    }
}

// ---------------------------------------------------------------------------
// QuantizedResidualBlock1d
// ---------------------------------------------------------------------------

/// Residual block with quantised convolutions. Both main-branch batch norms
/// (and the projection's, when present) are folded into their convolutions,
/// and the inner ReLU is fused, so the block is
/// `qconv1 → qconv2 (+ shortcut) → relu` — three integer GEMMs and one
/// add/clamp pass.
#[derive(Debug, Clone)]
pub struct QuantizedResidualBlock1d {
    conv1: QuantizedConv1d,
    conv2: QuantizedConv1d,
    projection: Option<QuantizedConv1d>,
    /// Identity-shortcut requantiser of the fixed-point path (block input
    /// grid → block output grid); `None` until [`Self::set_fixed_point`]
    /// runs, and always `None` when a projection carries the shortcut.
    shortcut: Option<Requantizer>,
}

impl QuantizedResidualBlock1d {
    /// Quantises a trained residual block (batch norms folded into the
    /// convolutions, inner ReLU fused).
    pub fn from_residual(block: &ResidualBlock1d) -> Self {
        let (conv1, bn1, conv2, bn2, projection) = block.parts();
        Self {
            conv1: QuantizedConv1d::from_conv_folded(conv1, bn1, true),
            conv2: QuantizedConv1d::from_conv_folded(conv2, bn2, false),
            projection: projection.map(|(c, b)| QuantizedConv1d::from_conv_folded(c, b, false)),
            shortcut: None,
        }
    }

    /// The first (ReLU-fused) convolution — exposed so scale calibration can
    /// observe the block's *mid* activations.
    pub fn conv1(&self) -> &QuantizedConv1d {
        &self.conv1
    }

    /// Builds the fixed-point plans of the whole block: `conv1` maps the
    /// input grid onto the mid grid, `conv2` maps mid onto the output grid,
    /// and the shortcut (projection conv, or a plain per-tensor requantiser
    /// for the identity) maps the input grid onto the output grid, so the
    /// residual add is an exact integer add of same-grid codes.
    pub fn set_fixed_point(&mut self, in_scale: f32, mid_scale: f32, out_scale: f32) {
        self.conv1.set_fixed_point(in_scale, mid_scale);
        self.conv2.set_fixed_point(mid_scale, out_scale);
        match self.projection.as_mut() {
            Some(conv) => conv.set_fixed_point(in_scale, out_scale),
            None => {
                self.shortcut = Some(Requantizer::from_ratio(in_scale as f64 / out_scale as f64));
            }
        }
    }

    /// Fixed-point forward pass of the whole block: two fused requantising
    /// GEMMs (conv1 with its ReLU clamp, conv2 onto the output grid), the
    /// shortcut rescaled onto the same grid (projection GEMM or per-tensor
    /// requantise), and the residual add + final ReLU as one integer
    /// add/clamp pass over the body codes. Scratch comes from the
    /// workspace's `i16` pool, so a warm pass allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if [`Self::set_fixed_point`] has not run or a geometry field
    /// disagrees (see [`QuantizedConv1d::forward_fixed`]).
    pub fn forward_fixed(&self, x: &QuantActs, out: &mut QuantActs, ws: &mut Workspace) {
        let out_c = self.out_channels();
        let (batch, len) = (x.batch, x.len);
        // Mid activations live on the same padded geometry as `out`, so
        // conv2's windows read them in place.
        let mut mid = QuantActs::with_buffer(
            ws.take_i16(batch * out.rows * out_c),
            batch,
            out_c,
            len,
            out.pad_left,
            out.rows,
            0.0,
        );
        self.conv1.forward_fixed(x, &mut mid);
        self.conv2.forward_fixed(&mid, out);
        // The shortcut needs no padding: it only feeds the add.
        let mut short = QuantActs::with_buffer(
            ws.take_i16(batch * len * out_c),
            batch,
            out_c,
            len,
            0,
            len,
            x.scale,
        );
        match (self.projection.as_ref(), self.shortcut) {
            (Some(conv), _) => conv.forward_fixed(x, &mut short),
            (None, Some(r)) => {
                // Identity shortcut: rescale the input codes onto the output
                // grid (no clamp asymmetry — the add below applies the ReLU).
                let qmax = ACT_QMAX as i16;
                for b in 0..batch {
                    let src_start = b * x.rows * x.channels + x.pad_left * x.channels;
                    let src = &x.codes[src_start..src_start + len * x.channels];
                    let dst = &mut short.codes[b * len * out_c..(b + 1) * len * out_c];
                    matmul::requantize_codes_into(dst, src, r, -qmax, qmax);
                }
            }
            (None, None) => panic!("set_fixed_point before forward_fixed"),
        }
        // Residual add + final ReLU: both operands are i16 codes on the
        // output grid, so the sum is exact in i32 and the ReLU is the
        // [0, 32767] clamp of the store. Pad rows stay zero (0 + 0).
        for b in 0..batch {
            let dst_start = b * out.rows * out_c + out.pad_left * out_c;
            let dst = &mut out.codes[dst_start..dst_start + len * out_c];
            let s = &short.codes[b * len * out_c..(b + 1) * len * out_c];
            for (d, &sv) in dst.iter_mut().zip(s.iter()) {
                *d = (*d as i32 + sv as i32).clamp(0, ACT_QMAX as i32) as i16;
            }
        }
        ws.recycle_i16(mid.codes);
        ws.recycle_i16(short.codes);
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.conv2.out_channels()
    }

    /// The block's quantised GEMM operands in a fixed order:
    /// `conv1, conv2, [projection conv]`.
    pub fn gemms(&self) -> Vec<&QuantizedGemm> {
        let mut gemms = vec![self.conv1.gemm(), self.conv2.gemm()];
        if let Some(conv) = self.projection.as_ref() {
            gemms.push(conv.gemm());
        }
        gemms
    }

    /// Mutable access to the quantised operands (same order as
    /// [`Self::gemms`]).
    pub fn gemms_mut(&mut self) -> Vec<&mut QuantizedGemm> {
        let mut gemms = vec![self.conv1.gemm_mut(), self.conv2.gemm_mut()];
        if let Some(conv) = self.projection.as_mut() {
            gemms.push(conv.gemm_mut());
        }
        gemms
    }
}

impl Layer for QuantizedResidualBlock1d {
    fn forward(&self, input: &Tensor, ws: &mut Workspace, training: bool) -> Tensor {
        if training {
            inference_only("QuantizedResidualBlock1d");
        }
        // conv1 carries bn1 + relu1 folded; conv2 carries bn2. Dead
        // intermediates return to the workspace arena immediately.
        let main = self.conv1.forward(input, ws, false);
        let mut sum = forward_consuming(&self.conv2, main, ws, false);
        match self.projection.as_ref() {
            Some(conv) => {
                let proj = conv.forward(input, ws, false);
                sum.add_assign(&proj);
                ws.recycle(proj);
            }
            None => sum.add_assign(input),
        }
        // The final ReLU of the block, in place on the sum.
        relu_in_place(sum.data_mut());
        sum
    }

    fn backward(&mut self, _grad_output: &Tensor, _ws: &mut Workspace) -> Tensor {
        inference_only("QuantizedResidualBlock1d")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn max_abs(v: &[f32]) -> f32 {
        v.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    fn assert_quant_close(fast: &Tensor, reference: &Tensor, tol: f32, what: &str) {
        assert_eq!(fast.shape(), reference.shape(), "{what}: shape mismatch");
        let scale = max_abs(reference.data()).max(1.0);
        for (i, (a, b)) in fast.data().iter().zip(reference.data().iter()).enumerate() {
            assert!(
                (a - b).abs() <= tol * scale,
                "{what}: mismatch at {i}: quantised {a} vs f32 {b} (scale {scale})"
            );
        }
    }

    #[test]
    fn quantized_conv_tracks_f32_conv() {
        let mut ws = Workspace::new();
        for &(in_c, out_c, k, len, batch) in
            &[(1usize, 4usize, 3usize, 32usize, 2usize), (2, 3, 9, 40, 3), (3, 2, 4, 16, 1)]
        {
            let conv = Conv1d::new(in_c, out_c, k, 31);
            let qconv = QuantizedConv1d::from_conv(&conv);
            let x = init::uniform(&[batch, in_c, len], -1.0, 1.0, 17);
            let fast = qconv.forward(&x, &mut ws, false);
            let slow = conv.forward(&x, &mut ws, false);
            assert_quant_close(&fast, &slow, 2e-2, &format!("conv {in_c}->{out_c} k{k}"));
        }
    }

    #[test]
    fn folded_conv_tracks_conv_then_bn_then_relu() {
        let mut ws = Workspace::new();
        let conv = Conv1d::new(2, 4, 5, 13);
        let mut bn = BatchNorm1d::new(4);
        // Drive the running stats away from the identity so the fold is
        // non-trivial.
        for seed in 0..8u64 {
            let x = init::uniform(&[2, 4, 12], -2.0, 3.0, seed);
            let y = bn.forward(&x, &mut ws, true);
            let _ = bn.backward(&Tensor::zeros(y.shape()), &mut ws);
        }
        let qconv = QuantizedConv1d::from_conv_folded(&conv, &bn, true);
        assert!(qconv.fused_relu());
        let x = init::uniform(&[2, 2, 24], -1.0, 1.0, 21);
        let fast = qconv.forward(&x, &mut ws, false);
        let conv_out = conv.forward(&x, &mut ws, false);
        let bn_out = bn.forward(&conv_out, &mut ws, false);
        let relu_out =
            Tensor::from_vec(bn_out.data().iter().map(|&v| v.max(0.0)).collect(), bn_out.shape());
        assert_quant_close(&fast, &relu_out, 2e-2, "conv+bn+relu fold");
    }

    #[test]
    fn quantized_linear_tracks_f32_linear() {
        let mut ws = Workspace::new();
        let lin = Linear::new(24, 10, 5);
        let qlin = QuantizedLinear::from_linear(&lin);
        let x = init::uniform(&[6, 24], -2.0, 2.0, 23);
        let fast = qlin.forward(&x, &mut ws, false);
        let slow = lin.forward(&x, &mut ws, false);
        assert_quant_close(&fast, &slow, 2e-2, "linear");
        // Fused-relu variant clamps exactly where the f32 ReLU would.
        let qrelu = QuantizedLinear::from_linear(&lin).with_fused_relu(true);
        let fast_relu = qrelu.forward(&x, &mut ws, false);
        for (a, b) in fast_relu.data().iter().zip(fast.data().iter()) {
            assert_eq!(*a, b.max(0.0));
        }
    }

    #[test]
    fn quantized_residual_block_tracks_f32_block() {
        let mut ws = Workspace::new();
        for (in_c, out_c) in [(4usize, 4usize), (4, 8)] {
            let block = ResidualBlock1d::new(in_c, out_c, 3, 7);
            let qblock = QuantizedResidualBlock1d::from_residual(&block);
            assert_eq!(qblock.out_channels(), out_c);
            let x = init::uniform(&[2, in_c, 20], -1.0, 1.0, 9);
            let fast = qblock.forward(&x, &mut ws, false);
            let slow = block.forward(&x, &mut ws, false);
            assert_quant_close(&fast, &slow, 5e-2, &format!("res {in_c}->{out_c}"));
            let expected_gemms = if in_c == out_c { 2 } else { 3 };
            assert_eq!(qblock.gemms().len(), expected_gemms);
        }
    }

    #[test]
    fn quantized_forward_is_deterministic_and_batch_independent() {
        // Per-item activation scales make every window's score independent
        // of how the batch is composed — the property the sliding-window
        // thread sharding relies on for bit-identical scores.
        let conv = Conv1d::new(1, 3, 5, 3);
        let qconv = QuantizedConv1d::from_conv(&conv);
        let mut ws = Workspace::new();
        let a = init::uniform(&[1, 1, 16], -1.0, 1.0, 1);
        let b = init::uniform(&[1, 1, 16], -1.0, 1.0, 2);
        let mut stacked_data = a.data().to_vec();
        stacked_data.extend_from_slice(b.data());
        let stacked = Tensor::from_vec(stacked_data, &[2, 1, 16]);
        let ya = qconv.forward(&a, &mut ws, false);
        let yb = qconv.forward(&b, &mut ws, false);
        let y2 = qconv.forward(&stacked, &mut ws, false);
        let half = y2.len() / 2;
        assert_eq!(&y2.data()[..half], ya.data());
        assert_eq!(&y2.data()[half..], yb.data());
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn quantized_training_forward_panics() {
        let conv = Conv1d::new(1, 1, 3, 1);
        let qconv = QuantizedConv1d::from_conv(&conv);
        let mut ws = Workspace::new();
        let _ = qconv.forward(&Tensor::zeros(&[1, 1, 8]), &mut ws, true);
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn quantized_backward_panics() {
        let lin = Linear::new(2, 2, 1);
        let mut qlin = QuantizedLinear::from_linear(&lin);
        let mut ws = Workspace::new();
        let _ = qlin.backward(&Tensor::zeros(&[1, 2]), &mut ws);
    }
}
