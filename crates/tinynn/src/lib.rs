//! # tinynn
//!
//! A small, dependency-light, CPU-only neural-network library implementing
//! exactly the building blocks required by the paper's 1-D ResNet classifier
//! (Figure 2): 1-D convolutions, batch normalisation, ReLU, residual blocks,
//! global average pooling, fully connected layers, softmax / cross-entropy,
//! and the Adam optimiser — together with mini-batch data loading, metrics
//! (accuracy, confusion matrices) and (de)serialisation of trained models.
//!
//! The original work trains with PyTorch on a GPU; `tch-rs`/`burn` are not
//! available in this offline environment and are immature for custom training
//! loops, so the layers are implemented from scratch with analytic backward
//! passes validated against finite differences (see the `gradcheck` tests in
//! each layer module).
//!
//! Layers hold parameters only; per-call scratch (backward caches, im2col
//! buffers) lives in an explicit [`Workspace`], so inference `forward` takes
//! `&self` and one trained model can be shared across threads with a cheap
//! per-thread workspace instead of a per-thread weight clone.
//!
//! ## Example: train a tiny classifier
//!
//! ```rust
//! use tinynn::{Linear, Relu, Sequential, Layer, Tensor, CrossEntropyLoss, Adam, Workspace};
//!
//! // Linearly separable toy problem.
//! let inputs = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
//! let labels = vec![0usize, 0, 1, 1];
//! let mut model = Sequential::new(vec![
//!     Box::new(Linear::new(2, 8, 1)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(8, 2, 2)),
//! ]);
//! let loss_fn = CrossEntropyLoss::new();
//! let mut optim = Adam::new(0.05);
//! let mut ws = Workspace::new();
//! for _ in 0..200 {
//!     let x = Tensor::from_rows(&inputs);
//!     let logits = model.forward(&x, &mut ws, true);
//!     let (_, grad) = loss_fn.loss_and_grad(&logits, &labels);
//!     model.zero_grad();
//!     model.backward(&grad, &mut ws);
//!     optim.step(&mut model.params_mut());
//! }
//! let logits = model.forward(&Tensor::from_rows(&inputs), &mut ws, false);
//! assert_eq!(logits.argmax_rows(), labels);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod init;
pub mod layers;
pub mod loss;
pub mod matmul;
pub mod metrics;
pub mod optim;
pub mod parallel;
pub mod param;
pub mod qlayers;
pub mod quant;
pub mod tensor;
pub mod workspace;

pub use data::{Batch, DataLoader};
pub use layers::{
    forward_consuming, BatchNorm1d, Conv1d, GlobalAvgPool1d, Layer, Linear, MaxPool1d, Relu,
    ResidualBlock1d, Sequential,
};
pub use loss::CrossEntropyLoss;
pub use metrics::{accuracy, ConfusionMatrix};
pub use optim::{Adam, Sgd};
pub use param::Param;
pub use qlayers::{QuantizedConv1d, QuantizedLinear, QuantizedResidualBlock1d};
pub use quant::{QuantActs, QuantPlan, QuantizedGemm, Requantizer};
pub use tensor::Tensor;
pub use workspace::Workspace;
