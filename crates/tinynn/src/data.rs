//! Mini-batch data loading with deterministic shuffling.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// One mini-batch: inputs stacked into a tensor plus the matching labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    /// Stacked inputs. For 1-D signals the shape is `[batch, 1, window_len]`
    /// (single input channel, as in the paper); for flat features it is
    /// `[batch, features]`.
    pub inputs: Tensor,
    /// Class label per batch element.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Deterministic mini-batch loader over `(sample, label)` pairs.
#[derive(Debug, Clone)]
pub struct DataLoader {
    samples: Vec<Vec<f32>>,
    labels: Vec<usize>,
    batch_size: usize,
    as_channels: bool,
}

impl DataLoader {
    /// Creates a loader over flat feature vectors (batches of shape
    /// `[batch, features]`).
    ///
    /// # Panics
    ///
    /// Panics if `samples` and `labels` lengths differ or `batch_size` is zero.
    pub fn new(samples: Vec<Vec<f32>>, labels: Vec<usize>, batch_size: usize) -> Self {
        assert_eq!(samples.len(), labels.len(), "samples/labels length mismatch");
        assert!(batch_size > 0, "batch size must be non-zero");
        Self { samples, labels, batch_size, as_channels: false }
    }

    /// Creates a loader over 1-D signals: batches have shape
    /// `[batch, 1, window_len]`, the input layout of the paper's CNN.
    ///
    /// # Panics
    ///
    /// Panics if `samples` and `labels` lengths differ or `batch_size` is zero.
    pub fn new_signal(samples: Vec<Vec<f32>>, labels: Vec<usize>, batch_size: usize) -> Self {
        let mut loader = Self::new(samples, labels, batch_size);
        loader.as_channels = true;
        loader
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the loader holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of batches per epoch (the last, possibly smaller batch included).
    pub fn batches_per_epoch(&self) -> usize {
        self.samples.len().div_ceil(self.batch_size)
    }

    /// Produces the shuffled mini-batches of one epoch.
    pub fn epoch(&self, seed: u64) -> Vec<Batch> {
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        self.batches_in_order(&order)
    }

    /// Produces the mini-batches without shuffling (e.g. for evaluation).
    pub fn sequential(&self) -> Vec<Batch> {
        let order: Vec<usize> = (0..self.samples.len()).collect();
        self.batches_in_order(&order)
    }

    fn batches_in_order(&self, order: &[usize]) -> Vec<Batch> {
        let mut batches = Vec::with_capacity(self.batches_per_epoch());
        for chunk in order.chunks(self.batch_size) {
            if chunk.is_empty() {
                continue;
            }
            // Stack selected samples straight into the flat batch buffer
            // (no per-row intermediate clones).
            let width = self.samples[chunk[0]].len();
            let mut flat: Vec<f32> = Vec::with_capacity(chunk.len() * width);
            for &i in chunk {
                flat.extend_from_slice(&self.samples[i]);
            }
            let labels: Vec<usize> = chunk.iter().map(|&i| self.labels[i]).collect();
            let inputs = if self.as_channels {
                Tensor::from_vec(flat, &[chunk.len(), 1, width])
            } else {
                Tensor::from_vec(flat, &[chunk.len(), width])
            };
            batches.push(Batch { inputs, labels });
        }
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data(n: usize, dim: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let samples = (0..n).map(|i| vec![i as f32; dim]).collect();
        let labels = (0..n).map(|i| i % 2).collect();
        (samples, labels)
    }

    #[test]
    fn batch_count_and_sizes() {
        let (s, l) = toy_data(10, 3);
        let loader = DataLoader::new(s, l, 4);
        assert_eq!(loader.batches_per_epoch(), 3);
        let batches = loader.sequential();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        assert_eq!(batches[0].inputs.shape(), &[4, 3]);
    }

    #[test]
    fn signal_loader_adds_channel_dim() {
        let (s, l) = toy_data(6, 8);
        let loader = DataLoader::new_signal(s, l, 3);
        let batches = loader.sequential();
        assert_eq!(batches[0].inputs.shape(), &[3, 1, 8]);
    }

    #[test]
    fn epoch_is_shuffled_but_complete() {
        let (s, l) = toy_data(20, 1);
        let loader = DataLoader::new(s, l, 5);
        let batches = loader.epoch(7);
        let mut seen: Vec<f32> = batches.iter().flat_map(|b| b.inputs.data().to_vec()).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f32> = (0..20).map(|x| x as f32).collect();
        assert_eq!(seen, expected);
        // Different seed gives different order.
        let other = loader.epoch(8);
        assert_ne!(batches[0].inputs.data().to_vec(), other[0].inputs.data().to_vec());
    }

    #[test]
    fn epoch_is_deterministic_for_seed() {
        let (s, l) = toy_data(16, 2);
        let loader = DataLoader::new(s, l, 4);
        let a = loader.epoch(3);
        let b = loader.epoch(3);
        assert_eq!(a[0].inputs, b[0].inputs);
        assert_eq!(a[0].labels, b[0].labels);
    }

    #[test]
    #[should_panic(expected = "batch size must be non-zero")]
    fn zero_batch_size_panics() {
        DataLoader::new(vec![vec![0.0]], vec![0], 0);
    }
}
