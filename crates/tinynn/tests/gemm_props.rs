//! Property tests of the packed register-tiled GEMM kernels.
//!
//! The micro-kernels carry three kinds of shape hazard: row strips that do
//! not divide `m` (zero-padded pack lanes), column blocks that do not divide
//! `n` (masked tails) and depth blocking at the `KC` boundary. Every test
//! here sweeps randomly drawn *odd* shapes plus an explicit edge list
//! (`k = 0`, `n = 1`, single rows, exact tile multiples, one-off remainders)
//! against the naive references — [`matmul_reference`] for the `f32` paths
//! (relative tolerance: the tiled kernels contract to FMA) and the exact
//! integer [`matmul_q8_reference`] for the quantised paths (bit-exact, with
//! code magnitudes kept small enough that the rescaled `f32` result is an
//! exactly representable integer).

use tinynn::matmul::{
    matmul_packed_lhs, matmul_packed_lhs_par, matmul_packed_rhs, matmul_q8, matmul_q8_a_bt,
    matmul_q8_reference, matmul_q8_sliding, matmul_reference, pack_lhs, pack_rhs_t, packed_lhs_len,
    packed_rhs_len,
};

/// Small deterministic LCG (same recipe as the quantisation property tests).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn uniform(&mut self, amp: f32) -> f32 {
        (self.next_u64() as f32 / (1u64 << 31) as f32 - 1.0) * amp
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}

/// Edge shapes every kernel must survive: empty depth, single columns and
/// rows, exact tile multiples (`MR = 4`, `NR = 16`) and one-off remainders
/// on each side, plus depths beyond one `KC = 256` block.
const EDGE_SHAPES: &[(usize, usize, usize)] = &[
    (1, 0, 1),
    (3, 0, 5),
    (1, 1, 1),
    (1, 7, 1),
    (4, 16, 16),
    (5, 16, 17),
    (3, 16, 15),
    (4, 17, 16),
    (8, 72, 128),
    (16, 144, 128),
    (9, 9, 1),
    (2, 256, 16),
    (2, 257, 16),
    (7, 300, 33),
    (1, 513, 31),
];

fn random_shape(rng: &mut Rng) -> (usize, usize, usize) {
    // Odd-leaning draws: every dimension is frequently a non-multiple of
    // its tile constant.
    (rng.usize_in(1, 21), rng.usize_in(0, 90), rng.usize_in(1, 70))
}

fn assert_f32_close(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (&g, &w)) in got.iter().zip(want.iter()).enumerate() {
        assert!((g - w).abs() <= 1e-5 * (1.0 + w.abs()), "{what} at {i}: {g} vs {w}");
    }
}

#[test]
fn packed_lhs_matches_reference_over_shape_sweep() {
    let mut rng = Rng::new(41);
    let shapes: Vec<_> =
        EDGE_SHAPES.iter().copied().chain((0..60).map(|_| random_shape(&mut rng))).collect();
    let mut pack = Vec::new();
    for (m, k, n) in shapes {
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(1.0)).collect();
        let expect = matmul_reference(&a, &b, m, k, n);
        pack_lhs(&mut pack, &a, m, k);
        assert_eq!(pack.len(), packed_lhs_len(m, k), "{m}x{k}");
        let mut c = vec![0.0f32; m * n];
        matmul_packed_lhs(&mut c, &pack, &b, m, k, n);
        assert_f32_close(&c, &expect, &format!("packed_lhs {m}x{k}x{n}"));
        // The threaded split must be bit-identical, not merely close.
        let mut cp = vec![0.0f32; m * n];
        matmul_packed_lhs_par(&mut cp, &pack, &b, m, k, n);
        assert_eq!(c, cp, "packed_lhs_par {m}x{k}x{n}");
    }
}

#[test]
fn packed_rhs_matches_reference_over_shape_sweep() {
    let mut rng = Rng::new(43);
    let shapes: Vec<_> =
        EDGE_SHAPES.iter().copied().chain((0..60).map(|_| random_shape(&mut rng))).collect();
    let mut pack = Vec::new();
    for (m, k, n) in shapes {
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(1.0)).collect();
        let bt: Vec<f32> = (0..n * k).map(|_| rng.uniform(1.0)).collect();
        // Reference expects B row-major [k, n]; transpose Bᵀ once.
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let expect = matmul_reference(&a, &b, m, k, n);
        pack_rhs_t(&mut pack, &bt, n, k);
        assert_eq!(pack.len(), packed_rhs_len(n, k), "{n}x{k}");
        let mut c = vec![0.0f32; m * n];
        matmul_packed_rhs(&mut c, &a, &pack, m, k, n);
        assert_f32_close(&c, &expect, &format!("packed_rhs {m}x{k}x{n}"));
    }
}

#[test]
fn packed_kernels_accumulate_into_nonzero_c() {
    // `C +=` semantics: a biased output must keep its bias.
    let mut rng = Rng::new(47);
    let (m, k, n) = (5usize, 23usize, 19usize);
    let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(1.0)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(1.0)).collect();
    let product = matmul_reference(&a, &b, m, k, n);
    let mut pack = Vec::new();
    pack_lhs(&mut pack, &a, m, k);
    let mut c = vec![2.5f32; m * n];
    matmul_packed_lhs(&mut c, &pack, &b, m, k, n);
    let expect: Vec<f32> = product.iter().map(|v| v + 2.5).collect();
    assert_f32_close(&c, &expect, "accumulate");
}

/// Draws quantised operands with code magnitudes small enough that every
/// rescaled dot (with unit scales) is an integer below 2²⁴ — exactly
/// representable in `f32`, so the comparison against the `i64` reference
/// can demand bit equality.
fn small_q_operands(rng: &mut Rng, len_a: usize, len_b: usize) -> (Vec<i16>, Vec<i16>) {
    let a: Vec<i16> = (0..len_a).map(|_| (rng.next_u64() % 7) as i16 - 3).collect();
    let b: Vec<i16> = (0..len_b).map(|_| (rng.next_u64() % 19) as i16 - 9).collect();
    (a, b)
}

#[test]
fn q8_kernels_match_exact_reference_over_shape_sweep() {
    let mut rng = Rng::new(53);
    let shapes: Vec<_> =
        EDGE_SHAPES.iter().copied().chain((0..40).map(|_| random_shape(&mut rng))).collect();
    for (m, k, n) in shapes {
        let (a, b) = small_q_operands(&mut rng, m * k, n * k);
        let exact = matmul_q8_reference(&a, &b, m, k, n);
        let ones = vec![1.0f32; m];
        let mut c = vec![0.0f32; m * n];
        matmul_q8(&mut c, &a, &ones, &b, 1.0, m, k, n);
        for (i, (&got, &want)) in c.iter().zip(exact.iter()).enumerate() {
            assert_eq!(got, want as f32, "matmul_q8 {m}x{k}x{n} at {i}");
        }
        let b_scales = vec![1.0f32; n];
        let mut cbt = vec![0.0f32; m * n];
        matmul_q8_a_bt(&mut cbt, &a, &ones, &b, &b_scales, m, k, n);
        for (i, (&got, &want)) in cbt.iter().zip(exact.iter()).enumerate() {
            assert_eq!(got, want as f32, "matmul_q8_a_bt {m}x{k}x{n} at {i}");
        }
    }
}

#[test]
fn q8_sliding_matches_packed_windows_over_stride_sweep() {
    let mut rng = Rng::new(59);
    for _ in 0..40 {
        let m = rng.usize_in(1, 17);
        let k = rng.usize_in(1, 60);
        let n = rng.usize_in(1, 40);
        let stride = rng.usize_in(1, k);
        let len_b = (n - 1) * stride + k;
        let (a, buf) = small_q_operands(&mut rng, m * k, len_b);
        let ones = vec![1.0f32; m];
        // Materialise every overlapping window for the packed layout.
        let mut packed = Vec::with_capacity(n * k);
        for j in 0..n {
            packed.extend_from_slice(&buf[j * stride..j * stride + k]);
        }
        let mut c_packed = vec![0.0f32; m * n];
        matmul_q8(&mut c_packed, &a, &ones, &packed, 1.0, m, k, n);
        let mut c_sliding = vec![0.0f32; m * n];
        matmul_q8_sliding(&mut c_sliding, &a, &ones, &buf, 1.0, m, k, n, stride);
        assert_eq!(c_packed, c_sliding, "m={m} k={k} n={n} stride={stride}");
    }
}
