//! Deterministic, seeded property tests for the quantisation path:
//! quantise→dequantise roundtrip bounds, scale correctness, degenerate
//! inputs, and integer-GEMM parity against the f32 kernels.
//!
//! The offline build has no `proptest`, so cases are generated from a seeded
//! xorshift generator — every run exercises the identical case set.

use tinynn::matmul::{matmul_q8, matmul_q8_a_bt, matmul_q8_reference, matmul_reference};
use tinynn::quant::{quantize_activations_into, QuantizedGemm, ACT_QMAX, WEIGHT_QMAX};

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f32 in `[-amp, amp)`.
    fn uniform(&mut self, amp: f32) -> f32 {
        let u = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        (2.0 * u - 1.0) * amp
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}

#[test]
fn per_channel_scales_equal_row_max_over_127() {
    let mut rng = Rng::new(1);
    for case in 0..50 {
        let rows = rng.usize_in(1, 9);
        let cols = rng.usize_in(1, 130);
        let amp = 0.01 + rng.uniform(1.0).abs() * 4.0;
        let weights: Vec<f32> = (0..rows * cols).map(|_| rng.uniform(amp)).collect();
        let gemm = QuantizedGemm::from_f32(&weights, &vec![0.0; rows], rows, cols);
        for (r, row) in weights.chunks(cols).enumerate() {
            let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let expect = if max_abs == 0.0 { 1.0 } else { max_abs / WEIGHT_QMAX };
            assert_eq!(gemm.scales()[r], expect, "case {case} row {r}");
        }
    }
}

#[test]
fn roundtrip_error_is_bounded_by_half_scale_per_weight() {
    let mut rng = Rng::new(2);
    for case in 0..50 {
        let rows = rng.usize_in(1, 8);
        let cols = rng.usize_in(1, 200);
        let amp = 1e-3 + rng.uniform(1.0).abs() * 10.0;
        let weights: Vec<f32> = (0..rows * cols).map(|_| rng.uniform(amp)).collect();
        let gemm = QuantizedGemm::from_f32(&weights, &vec![0.0; rows], rows, cols);
        let back = gemm.dequantize();
        for (r, (orig, deq)) in weights.chunks(cols).zip(back.chunks(cols)).enumerate() {
            // Round-to-nearest: every weight lands within half a grid step.
            // The 1e-6 slack absorbs the rounding of the scale itself.
            let bound = gemm.scales()[r] * (0.5 + 1e-4);
            for (i, (&a, &b)) in orig.iter().zip(deq.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= bound,
                    "case {case} row {r} col {i}: |{a} - {b}| > {bound}"
                );
            }
        }
    }
}

#[test]
fn zero_channels_never_produce_nan_or_zero_scales() {
    let mut rng = Rng::new(3);
    for case in 0..30 {
        let rows = rng.usize_in(2, 7);
        let cols = rng.usize_in(1, 64);
        let zero_row = rng.usize_in(0, rows - 1);
        let mut weights: Vec<f32> = (0..rows * cols).map(|_| rng.uniform(2.0)).collect();
        weights[zero_row * cols..(zero_row + 1) * cols].fill(0.0);
        let gemm = QuantizedGemm::from_f32(&weights, &vec![0.0; rows], rows, cols);
        for (r, &s) in gemm.scales().iter().enumerate() {
            assert!(s.is_finite() && s > 0.0, "case {case} row {r}: scale {s}");
        }
        let deq = gemm.dequantize();
        assert!(deq.iter().all(|v| v.is_finite()));
        assert!(deq[zero_row * cols..(zero_row + 1) * cols].iter().all(|&v| v == 0.0));
    }
}

#[test]
fn activation_roundtrip_error_is_bounded_by_half_scale() {
    let mut rng = Rng::new(4);
    let mut codes = Vec::new();
    for case in 0..50 {
        let len = rng.usize_in(1, 400);
        let amp = 1e-4 + rng.uniform(1.0).abs() * 100.0;
        let xs: Vec<f32> = (0..len).map(|_| rng.uniform(amp)).collect();
        let scale = quantize_activations_into(&xs, &mut codes);
        assert!(scale.is_finite() && scale > 0.0, "case {case}");
        let max_abs = xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if max_abs > 0.0 {
            assert_eq!(scale, max_abs / ACT_QMAX, "case {case}: tight grid");
        }
        // The i16 grid ratio reaches 32767, so the ~1e-7 relative rounding
        // of the `x · (1/scale)` multiply can shift a value by a few
        // thousandths of a grid step across the round-to-nearest boundary.
        for (i, (&x, &q)) in xs.iter().zip(codes.iter()).enumerate() {
            assert!((x - q as f32 * scale).abs() <= scale * (0.5 + 1e-2), "case {case} sample {i}");
        }
    }
}

#[test]
fn quantised_gemm_tracks_f32_gemm_within_quantisation_error() {
    // End-to-end kernel property: dequantised integer GEMM ≈ f32 GEMM of
    // the dequantised operands, and both ≈ the original product within the
    // analytic quantisation error bound.
    let mut rng = Rng::new(5);
    for case in 0..12 {
        let m = rng.usize_in(1, 10);
        let k = rng.usize_in(1, 300);
        let n = rng.usize_in(1, 200);
        let w: Vec<f32> = (0..m * k).map(|_| rng.uniform(0.5)).collect();
        let x: Vec<f32> = (0..k * n).map(|_| rng.uniform(2.0)).collect();
        let gemm = QuantizedGemm::from_f32(&w, &vec![0.0; m], m, k);
        // The conv kernel takes the activations as im2row-style rows
        // ([n, k]); build the transposed layout from the [k, n] matrix.
        let mut xt = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                xt[j * k + kk] = x[kk * n + j];
            }
        }
        let mut codes = Vec::new();
        let x_scale = quantize_activations_into(&xt, &mut codes);

        let mut qc = vec![0.0f32; m * n];
        matmul_q8(&mut qc, gemm.data16(), gemm.scales(), &codes, x_scale, m, k, n);

        // Exact integer reference with the same scaling.
        let exact = matmul_q8_reference(gemm.data16(), &codes, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let expect = gemm.scales()[i] * x_scale * exact[i * n + j] as f32;
                let got = qc[i * n + j];
                assert!(
                    (got - expect).abs() <= 1e-5 * (1.0 + expect.abs()),
                    "case {case}: blocked kernel diverged from the exact integer product"
                );
            }
        }

        // Against the original f32 product: error bounded by the propagated
        // weight/activation grid steps (loose analytic bound).
        let f32_ref = matmul_reference(&w, &x, m, k, n);
        let x_max = x.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        for i in 0..m {
            let w_step = gemm.scales()[i] / 2.0;
            let x_step = x_scale / 2.0;
            let w_row_l1: f32 = w[i * k..(i + 1) * k].iter().map(|v| v.abs()).sum();
            let bound = (k as f32) * w_step * (x_max + x_step) + w_row_l1 * x_step + 1e-5;
            for j in 0..n {
                let diff = (qc[i * n + j] - f32_ref[i * n + j]).abs();
                assert!(diff <= bound, "case {case} ({i},{j}): |Δ| = {diff} > bound {bound}");
            }
        }
    }
}

#[test]
fn quantised_dot_kernel_matches_integer_math_exactly_up_to_scaling() {
    let mut rng = Rng::new(6);
    for case in 0..12 {
        let m = rng.usize_in(1, 8);
        let k = rng.usize_in(1, 700);
        let n = rng.usize_in(1, 12);
        let a: Vec<i16> =
            (0..m * k).map(|_| ((rng.next_u64() % 65535) as i64 - 32767) as i16).collect();
        let b: Vec<i16> =
            (0..n * k).map(|_| ((rng.next_u64() % 255) as i64 - 127) as i16).collect();
        let a_scales: Vec<f32> = (0..m).map(|_| 1e-5 + rng.uniform(1.0).abs() * 1e-4).collect();
        let b_scales: Vec<f32> = (0..n).map(|_| 1e-3 + rng.uniform(1.0).abs() * 1e-2).collect();
        let mut c = vec![0.0f32; m * n];
        matmul_q8_a_bt(&mut c, &a, &a_scales, &b, &b_scales, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    acc += a[i * k + kk] as i64 * b[j * k + kk] as i64;
                }
                let expect = a_scales[i] * b_scales[j] * acc as f32;
                let got = c[i * n + j];
                assert!(
                    (got - expect).abs() <= 1e-5 * (1.0 + expect.abs()),
                    "case {case} ({i},{j}): {got} vs {expect}"
                );
            }
        }
    }
}
