//! Deterministic, seeded property tests for the quantisation path:
//! quantise→dequantise roundtrip bounds, scale correctness, degenerate
//! inputs, and integer-GEMM parity against the f32 kernels.
//!
//! The offline build has no `proptest`, so cases are generated from a seeded
//! xorshift generator — every run exercises the identical case set.

use tinynn::matmul::{
    matmul_q8, matmul_q8_a_bt, matmul_q8_reference, matmul_q8_requant_sliding,
    matmul_q8_requant_sliding_packed, matmul_reference,
};
use tinynn::quant::{
    quantize_activations_into, QuantPlan, QuantizedGemm, Requantizer, ACT_QMAX, WEIGHT_QMAX,
};

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f32 in `[-amp, amp)`.
    fn uniform(&mut self, amp: f32) -> f32 {
        let u = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        (2.0 * u - 1.0) * amp
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}

#[test]
fn per_channel_scales_equal_row_max_over_127() {
    let mut rng = Rng::new(1);
    for case in 0..50 {
        let rows = rng.usize_in(1, 9);
        let cols = rng.usize_in(1, 130);
        let amp = 0.01 + rng.uniform(1.0).abs() * 4.0;
        let weights: Vec<f32> = (0..rows * cols).map(|_| rng.uniform(amp)).collect();
        let gemm = QuantizedGemm::from_f32(&weights, &vec![0.0; rows], rows, cols);
        for (r, row) in weights.chunks(cols).enumerate() {
            let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let expect = if max_abs == 0.0 { 1.0 } else { max_abs / WEIGHT_QMAX };
            assert_eq!(gemm.scales()[r], expect, "case {case} row {r}");
        }
    }
}

#[test]
fn roundtrip_error_is_bounded_by_half_scale_per_weight() {
    let mut rng = Rng::new(2);
    for case in 0..50 {
        let rows = rng.usize_in(1, 8);
        let cols = rng.usize_in(1, 200);
        let amp = 1e-3 + rng.uniform(1.0).abs() * 10.0;
        let weights: Vec<f32> = (0..rows * cols).map(|_| rng.uniform(amp)).collect();
        let gemm = QuantizedGemm::from_f32(&weights, &vec![0.0; rows], rows, cols);
        let back = gemm.dequantize();
        for (r, (orig, deq)) in weights.chunks(cols).zip(back.chunks(cols)).enumerate() {
            // Round-to-nearest: every weight lands within half a grid step.
            // The 1e-6 slack absorbs the rounding of the scale itself.
            let bound = gemm.scales()[r] * (0.5 + 1e-4);
            for (i, (&a, &b)) in orig.iter().zip(deq.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= bound,
                    "case {case} row {r} col {i}: |{a} - {b}| > {bound}"
                );
            }
        }
    }
}

#[test]
fn zero_channels_never_produce_nan_or_zero_scales() {
    let mut rng = Rng::new(3);
    for case in 0..30 {
        let rows = rng.usize_in(2, 7);
        let cols = rng.usize_in(1, 64);
        let zero_row = rng.usize_in(0, rows - 1);
        let mut weights: Vec<f32> = (0..rows * cols).map(|_| rng.uniform(2.0)).collect();
        weights[zero_row * cols..(zero_row + 1) * cols].fill(0.0);
        let gemm = QuantizedGemm::from_f32(&weights, &vec![0.0; rows], rows, cols);
        for (r, &s) in gemm.scales().iter().enumerate() {
            assert!(s.is_finite() && s > 0.0, "case {case} row {r}: scale {s}");
        }
        let deq = gemm.dequantize();
        assert!(deq.iter().all(|v| v.is_finite()));
        assert!(deq[zero_row * cols..(zero_row + 1) * cols].iter().all(|&v| v == 0.0));
    }
}

#[test]
fn activation_roundtrip_error_is_bounded_by_half_scale() {
    let mut rng = Rng::new(4);
    let mut codes = Vec::new();
    for case in 0..50 {
        let len = rng.usize_in(1, 400);
        let amp = 1e-4 + rng.uniform(1.0).abs() * 100.0;
        let xs: Vec<f32> = (0..len).map(|_| rng.uniform(amp)).collect();
        let scale = quantize_activations_into(&xs, &mut codes);
        assert!(scale.is_finite() && scale > 0.0, "case {case}");
        let max_abs = xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if max_abs > 0.0 {
            assert_eq!(scale, max_abs / ACT_QMAX, "case {case}: tight grid");
        }
        // The i16 grid ratio reaches 32767, so the ~1e-7 relative rounding
        // of the `x · (1/scale)` multiply can shift a value by a few
        // thousandths of a grid step across the round-to-nearest boundary.
        for (i, (&x, &q)) in xs.iter().zip(codes.iter()).enumerate() {
            assert!((x - q as f32 * scale).abs() <= scale * (0.5 + 1e-2), "case {case} sample {i}");
        }
    }
}

#[test]
fn quantised_gemm_tracks_f32_gemm_within_quantisation_error() {
    // End-to-end kernel property: dequantised integer GEMM ≈ f32 GEMM of
    // the dequantised operands, and both ≈ the original product within the
    // analytic quantisation error bound.
    let mut rng = Rng::new(5);
    for case in 0..12 {
        let m = rng.usize_in(1, 10);
        let k = rng.usize_in(1, 300);
        let n = rng.usize_in(1, 200);
        let w: Vec<f32> = (0..m * k).map(|_| rng.uniform(0.5)).collect();
        let x: Vec<f32> = (0..k * n).map(|_| rng.uniform(2.0)).collect();
        let gemm = QuantizedGemm::from_f32(&w, &vec![0.0; m], m, k);
        // The conv kernel takes the activations as im2row-style rows
        // ([n, k]); build the transposed layout from the [k, n] matrix.
        let mut xt = vec![0.0f32; n * k];
        for kk in 0..k {
            for j in 0..n {
                xt[j * k + kk] = x[kk * n + j];
            }
        }
        let mut codes = Vec::new();
        let x_scale = quantize_activations_into(&xt, &mut codes);

        let mut qc = vec![0.0f32; m * n];
        matmul_q8(&mut qc, gemm.data16(), gemm.scales(), &codes, x_scale, m, k, n);

        // Exact integer reference with the same scaling.
        let exact = matmul_q8_reference(gemm.data16(), &codes, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let expect = gemm.scales()[i] * x_scale * exact[i * n + j] as f32;
                let got = qc[i * n + j];
                assert!(
                    (got - expect).abs() <= 1e-5 * (1.0 + expect.abs()),
                    "case {case}: blocked kernel diverged from the exact integer product"
                );
            }
        }

        // Against the original f32 product: error bounded by the propagated
        // weight/activation grid steps (loose analytic bound).
        let f32_ref = matmul_reference(&w, &x, m, k, n);
        let x_max = x.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        for i in 0..m {
            let w_step = gemm.scales()[i] / 2.0;
            let x_step = x_scale / 2.0;
            let w_row_l1: f32 = w[i * k..(i + 1) * k].iter().map(|v| v.abs()).sum();
            let bound = (k as f32) * w_step * (x_max + x_step) + w_row_l1 * x_step + 1e-5;
            for j in 0..n {
                let diff = (qc[i * n + j] - f32_ref[i * n + j]).abs();
                assert!(diff <= bound, "case {case} ({i},{j}): |Δ| = {diff} > bound {bound}");
            }
        }
    }
}

/// Exact round-to-nearest-even reference for `acc · mult / 2^shift`,
/// computed in `i128` so no intermediate can overflow or round.
fn rne_shift_reference(acc: i32, mult: i32, shift: u8) -> i64 {
    let prod = acc as i128 * mult as i128;
    if shift == 0 {
        return prod as i64;
    }
    let div = 1i128 << shift;
    let floor = prod.div_euclid(div);
    let rem = prod.rem_euclid(div);
    let half = div / 2;
    let rounded = if rem > half || (rem == half && floor & 1 == 1) { floor + 1 } else { floor };
    rounded as i64
}

#[test]
fn requantizer_apply_is_exact_rne_across_the_full_accumulator_range() {
    let mut rng = Rng::new(7);
    let edge_accs =
        [i32::MIN, i32::MIN + 1, -1, 0, 1, i32::MAX - 1, i32::MAX, 0x4000_0000, -0x4000_0000];
    for case in 0..200 {
        // Ratios spanning ~18 orders of magnitude: tiny grids force the
        // shift to its cap, huge ones force shift 0.
        let mag = rng.uniform(9.0) as f64;
        let ratio = (0.1 + rng.uniform(1.0).abs() as f64) * 10f64.powf(mag);
        let r = Requantizer::from_ratio(ratio);
        assert!(r.shift() <= 62, "case {case}: shift {} out of range", r.shift());
        for &acc in &edge_accs {
            assert_eq!(
                r.apply(acc),
                rne_shift_reference(acc, r.mult(), r.shift()),
                "case {case} ratio {ratio} acc {acc}"
            );
        }
        for _ in 0..20 {
            let acc = rng.next_u64() as u32 as i32;
            assert_eq!(
                r.apply(acc),
                rne_shift_reference(acc, r.mult(), r.shift()),
                "case {case} ratio {ratio} acc {acc}"
            );
        }
    }
}

#[test]
fn requantizer_tracks_the_real_ratio_and_f64_rounding() {
    let mut rng = Rng::new(8);
    for case in 0..100 {
        let ratio = (1e-4 + rng.uniform(1.0).abs() as f64) * 10f64.powf(rng.uniform(4.0) as f64);
        let r = Requantizer::from_ratio(ratio);
        // The fixed-point representation is the nearest 31-bit approximation:
        // relative error below 2^-30.
        let represented = r.mult() as f64 / (1u64 << r.shift()) as f64;
        assert!(
            (represented - ratio).abs() <= ratio * 2.0f64.powi(-30),
            "case {case}: ratio {ratio} represented as {represented}"
        );
        // And applying it matches f64 round-ties-even of the true product
        // for accumulators small enough that the 2^-30 representation error
        // cannot reach the rounding boundary.
        for _ in 0..20 {
            let acc = (rng.next_u64() % (1 << 21)) as i32 - (1 << 20);
            let exact = (acc as f64 * represented).round_ties_even() as i64;
            assert_eq!(r.apply(acc), exact, "case {case} ratio {ratio} acc {acc}");
        }
    }
}

#[test]
fn requantizer_shift_edge_cases_are_exact() {
    // Powers of two are exactly representable: mult = 2^30, shift chosen so
    // the product is an exact integer multiply/divide.
    for (ratio, acc, expect) in [
        (1.0, 12345i32, 12345i64),
        (0.5, 7, 4),   // 3.5 rounds to even 4
        (0.5, 9, 4),   // 4.5 rounds to even 4
        (0.5, -7, -4), // -3.5 rounds to even -4
        (2.0, -21, -42),
        (0.25, 10, 2), // 2.5 rounds to even 2
    ] {
        let r = Requantizer::from_ratio(ratio);
        assert_eq!(r.apply(acc), expect, "ratio {ratio} acc {acc}");
    }
    // Degenerate and extreme ratios must stay inside the shift range and
    // never panic: zero, subnormal-small, enormous.
    assert_eq!(Requantizer::from_ratio(0.0).apply(i32::MAX), 0);
    assert_eq!(Requantizer::from_ratio(-1.0).apply(55), 0);
    assert_eq!(Requantizer::from_ratio(f64::NAN).apply(55), 0);
    let tiny = Requantizer::from_ratio(1e-300);
    assert_eq!(tiny.shift(), 62, "tiny ratios saturate the shift");
    assert_eq!(tiny.apply(i32::MAX), 0, "a sub-resolution ratio rounds every acc to 0");
    let huge = Requantizer::from_ratio(1e18);
    assert_eq!(huge.shift(), 0, "huge ratios exhaust the shift");
    assert_eq!(huge.mult(), i32::MAX, "and saturate the multiplier");
    // Clamping composes with the exact rounding.
    let unit = Requantizer::from_ratio(1.0);
    assert_eq!(unit.requantize_i16(40_000, -32767, 32767), 32767);
    assert_eq!(unit.requantize_i16(-40_000, -32767, 32767), -32767);
    assert_eq!(unit.requantize_i16(-5, 0, 32767), 0, "fused ReLU clamp");
}

#[test]
fn per_channel_plan_mults_track_the_scale_products() {
    let mut rng = Rng::new(9);
    for case in 0..30 {
        let rows = rng.usize_in(1, 12);
        let cols = rng.usize_in(1, 80);
        let weights: Vec<f32> = (0..rows * cols).map(|_| rng.uniform(3.0)).collect();
        let bias: Vec<f32> = (0..rows).map(|_| rng.uniform(2.0)).collect();
        let gemm = QuantizedGemm::from_f32(&weights, &bias, rows, cols);
        let in_scale = 1e-4 + rng.uniform(1.0).abs() * 0.1;
        let out_scale = 1e-4 + rng.uniform(1.0).abs() * 0.1;
        let plan = QuantPlan::new(&gemm, in_scale, out_scale, false);
        assert_eq!(plan.mults.len(), rows);
        assert_eq!(plan.bias_q.len(), rows);
        // Every channel shares the layer shift (the SIMD epilogue divides
        // all lanes by one power of two), and `mults_i32` mirrors it.
        for (r, mult) in plan.mults.iter().enumerate() {
            assert_eq!(mult.shift(), plan.shift, "case {case} row {r} shift not uniform");
            assert_eq!(mult.mult(), plan.mults_i32[r], "case {case} row {r} mults_i32 mirror");
        }
        for (r, (mult, &s_w)) in plan.mults.iter().zip(gemm.scales()).enumerate() {
            let ratio = s_w as f64 * in_scale as f64 / out_scale as f64;
            let represented = mult.mult() as f64 / (1u64 << mult.shift()) as f64;
            // At the shared shift the multiplier is rne(ratio · 2^shift):
            // absolute error ≤ 2^-(shift+1), plus the ~2^-30 relative
            // rounding of the shift-defining (largest-ratio) channel.
            let tol = 0.5 / (1u64 << plan.shift) as f64 + ratio * 2.0f64.powi(-30);
            assert!(
                (represented - ratio).abs() <= tol,
                "case {case} row {r}: {represented} vs {ratio} (shift {})",
                plan.shift
            );
            // Bias lands on the accumulator grid by round-ties-even, clamped
            // to the wrap-free bound the SIMD kernel's plain add relies on.
            let acc_scale = s_w as f64 * in_scale as f64;
            let expect = (bias[r] as f64 / acc_scale)
                .round_ties_even()
                .clamp(-(qsimd::BIAS_BOUND as f64), qsimd::BIAS_BOUND as f64)
                as i32;
            assert_eq!(plan.bias_q[r], expect, "case {case} row {r} bias");
        }
    }
}

#[test]
fn requantising_gemm_matches_the_scalar_reference_exactly() {
    // The fused requantising kernel must agree bit-for-bit with the naive
    // i64 dot → saturate → bias → RNE-rescale → clamp pipeline, on both the
    // const-depth and the deep (k > 256) paths.
    let mut rng = Rng::new(10);
    for case in 0..16 {
        let m = rng.usize_in(1, 10);
        let k = if case % 3 == 0 { rng.usize_in(257, 600) } else { rng.usize_in(1, 256) };
        let n = rng.usize_in(1, 20);
        let a: Vec<i16> =
            (0..m * k).map(|_| ((rng.next_u64() % 255) as i64 - 127) as i16).collect();
        let b: Vec<i16> =
            (0..n * k).map(|_| ((rng.next_u64() % 65535) as i64 - 32767) as i16).collect();
        let bias: Vec<i32> = (0..m).map(|_| rng.next_u64() as u32 as i32 / 1024).collect();
        let mults: Vec<Requantizer> = (0..m)
            .map(|_| Requantizer::from_ratio(1e-5 + rng.uniform(1.0).abs() as f64 * 0.1))
            .collect();
        let (lo, hi) = if case % 2 == 0 { (0i16, 32767i16) } else { (-32767i16, 32767i16) };
        // Position-major output: c[j * m + i].
        let mut c = vec![0i16; n * m];
        matmul_q8_requant_sliding(&mut c, &a, &bias, &mults, &b, m, k, n, k, lo, hi);
        let exact = matmul_q8_reference(&a, &b, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let acc = (exact[i * n + j] + bias[i] as i64)
                    .clamp(i32::MIN as i64, i32::MAX as i64) as i32;
                let expect = mults[i].requantize_i16(acc, lo, hi);
                assert_eq!(
                    c[j * m + i],
                    expect,
                    "case {case} ({i},{j}): kernel diverged from scalar reference"
                );
            }
        }
    }
}

#[test]
fn quantised_dot_kernel_matches_integer_math_exactly_up_to_scaling() {
    let mut rng = Rng::new(6);
    for case in 0..12 {
        let m = rng.usize_in(1, 8);
        let k = rng.usize_in(1, 700);
        let n = rng.usize_in(1, 12);
        let a: Vec<i16> =
            (0..m * k).map(|_| ((rng.next_u64() % 65535) as i64 - 32767) as i16).collect();
        let b: Vec<i16> =
            (0..n * k).map(|_| ((rng.next_u64() % 255) as i64 - 127) as i16).collect();
        let a_scales: Vec<f32> = (0..m).map(|_| 1e-5 + rng.uniform(1.0).abs() * 1e-4).collect();
        let b_scales: Vec<f32> = (0..n).map(|_| 1e-3 + rng.uniform(1.0).abs() * 1e-2).collect();
        let mut c = vec![0.0f32; m * n];
        matmul_q8_a_bt(&mut c, &a, &a_scales, &b, &b_scales, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    acc += a[i * k + kk] as i64 * b[j * k + kk] as i64;
                }
                let expect = a_scales[i] * b_scales[j] * acc as f32;
                let got = c[i * n + j];
                assert!(
                    (got - expect).abs() <= 1e-5 * (1.0 + expect.abs()),
                    "case {case} ({i},{j}): {got} vs {expect}"
                );
            }
        }
    }
}

#[test]
fn packed_simd_gemm_agrees_with_the_scalar_kernel_bit_for_bit() {
    // The SIMD fast path and the scalar fallback must be interchangeable:
    // same plan, same codes. Shapes cover the bench model's layers (m ∈ {8,
    // 16}, odd and even depths) plus multi-block channel counts; when the
    // build has no AVX2 the packed entry declines and the property is
    // vacuously covered by the fallback itself.
    let mut rng = Rng::new(12);
    for case in 0..20 {
        let m = 8 * rng.usize_in(1, 3);
        let k = rng.usize_in(1, 160);
        let n = rng.usize_in(1, 40);
        let stride = rng.usize_in(1, k);
        let weights: Vec<f32> = (0..m * k).map(|_| rng.uniform(2.0)).collect();
        let bias: Vec<f32> = (0..m).map(|_| rng.uniform(1.0)).collect();
        let gemm = QuantizedGemm::from_f32(&weights, &bias, m, k);
        let in_scale = 1e-4 + rng.uniform(1.0).abs() * 1e-2;
        // Keep every channel ratio s_w · in/out ≤ ½ (s_w ≤ 2/127 here), the
        // SIMD dispatch envelope — like any calibrated layer's grids.
        let out_scale = in_scale * (0.1 + rng.uniform(1.0).abs());
        let plan = QuantPlan::new(&gemm, in_scale, out_scale, case % 2 == 0);
        let blen = (n - 1) * stride + k;
        let b: Vec<i16> =
            (0..blen).map(|_| ((rng.next_u64() % 65535) as i64 - 32767) as i16).collect();
        let mut c_simd = vec![0i16; n * m];
        let taken = matmul_q8_requant_sliding_packed(
            &mut c_simd,
            gemm.packed16(),
            &plan.bias_q,
            &plan.mults_i32,
            plan.shift,
            &b,
            m,
            k,
            n,
            stride,
            plan.lo,
            plan.hi,
        );
        assert_eq!(
            taken,
            qsimd::available(),
            "case {case}: the bench-model envelope must take the SIMD path whenever it exists"
        );
        if !taken {
            continue;
        }
        let mut c_scalar = vec![0i16; n * m];
        matmul_q8_requant_sliding(
            &mut c_scalar,
            gemm.data16(),
            &plan.bias_q,
            &plan.mults,
            &b,
            m,
            k,
            n,
            stride,
            plan.lo,
            plan.hi,
        );
        assert_eq!(c_simd, c_scalar, "case {case}: m={m} k={k} n={n} stride={stride}");
    }
}
