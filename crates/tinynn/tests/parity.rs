//! Parity tests pinning the optimised (im2col/GEMM, vectorised) layer
//! implementations to the naive scalar references within 1e-5, across odd
//! and even kernel sizes, multi-channel inputs and edge-padding cases.

use tinynn::layers::{Conv1d, Layer, Linear};
use tinynn::workspace::Workspace;
use tinynn::{init, Tensor};

const TOL: f32 = 1e-5;

fn assert_close(fast: &Tensor, slow: &Tensor, what: &str) {
    assert_eq!(fast.shape(), slow.shape(), "{what}: shape mismatch");
    for (i, (a, b)) in fast.data().iter().zip(slow.data().iter()).enumerate() {
        assert!(
            (a - b).abs() <= TOL * (1.0 + b.abs()),
            "{what}: mismatch at {i}: optimised {a} vs reference {b}"
        );
    }
}

/// The shape matrix exercised by every conv parity test: odd and even
/// kernels (even kernels have asymmetric same-padding), kernels longer than
/// the signal (padding covers both edges at once), single- and multi-channel
/// inputs, and batch sizes around the parallel-split boundaries.
const CONV_CASES: &[(usize, usize, usize, usize, usize)] = &[
    // (in_c, out_c, kernel, len, batch)
    (1, 1, 1, 8, 1),
    (1, 4, 3, 32, 2),
    (1, 4, 4, 32, 2),
    (2, 3, 7, 16, 3),
    (2, 3, 8, 16, 3),
    (4, 2, 5, 9, 2),
    (3, 5, 9, 64, 4),
    (1, 2, 9, 5, 2),   // kernel longer than the signal: all windows clipped
    (2, 2, 64, 24, 1), // the paper's kernel on a short window
    (1, 8, 3, 128, 7),
];

#[test]
fn conv1d_forward_matches_naive_reference() {
    let mut ws = Workspace::new();
    for &(in_c, out_c, k, len, batch) in CONV_CASES {
        let conv = Conv1d::new(in_c, out_c, k, 0xC0FFEE ^ (k as u64));
        let x = init::uniform(&[batch, in_c, len], -2.0, 2.0, 31 + k as u64);
        let slow = conv.forward_reference(&x);
        let fast = conv.forward(&x, &mut ws, false);
        assert_close(&fast, &slow, &format!("conv fwd in{in_c} out{out_c} k{k} n{len} b{batch}"));
    }
}

#[test]
fn conv1d_backward_matches_naive_reference() {
    for &(in_c, out_c, k, len, batch) in CONV_CASES {
        let mut conv = Conv1d::new(in_c, out_c, k, 7 + k as u64);
        let x = init::uniform(&[batch, in_c, len], -1.0, 1.0, 100 + k as u64);
        let g = init::uniform(&[batch, out_c, len], -1.0, 1.0, 200 + k as u64);
        let mut ws = Workspace::new();
        let (ref_gi, ref_gw, ref_gb) = conv.backward_reference(&x, &g);
        let _ = conv.forward(&x, &mut ws, true);
        conv.zero_grad();
        let gi = conv.backward(&g, &mut ws);
        let what = format!("conv bwd in{in_c} out{out_c} k{k} n{len} b{batch}");
        assert_close(&gi, &ref_gi, &format!("{what}: grad_input"));
        let params = conv.params_mut();
        assert_close(&params[0].grad, &ref_gw, &format!("{what}: grad_weight"));
        assert_close(&params[1].grad, &ref_gb, &format!("{what}: grad_bias"));
    }
}

#[test]
fn conv1d_backward_accumulates_across_calls() {
    // The GEMM backward must *accumulate* into the gradients exactly like
    // the reference, not overwrite them.
    let (in_c, out_c, k, len, batch) = (2usize, 2usize, 3usize, 12usize, 2usize);
    let mut conv = Conv1d::new(in_c, out_c, k, 5);
    let x = init::uniform(&[batch, in_c, len], -1.0, 1.0, 1);
    let g = init::uniform(&[batch, out_c, len], -1.0, 1.0, 2);
    let mut ws = Workspace::new();
    let (_, ref_gw, _) = conv.backward_reference(&x, &g);
    for _ in 0..2 {
        let _ = conv.forward(&x, &mut ws, true);
        let _ = conv.backward(&g, &mut ws);
    }
    let doubled = ref_gw.scale(2.0);
    let params = conv.params_mut();
    assert_close(&params[0].grad, &doubled, "accumulated grad_weight");
}

#[test]
fn linear_forward_matches_naive_reference() {
    for &(in_f, out_f, batch) in
        &[(1usize, 1usize, 1usize), (5, 3, 4), (16, 16, 2), (64, 2, 33), (7, 11, 1)]
    {
        let mut ws = Workspace::new();
        let lin = Linear::new(in_f, out_f, 3 + in_f as u64);
        let x = init::uniform(&[batch, in_f], -2.0, 2.0, 50 + batch as u64);
        let slow = lin.forward_reference(&x);
        let fast = lin.forward(&x, &mut ws, false);
        assert_close(&fast, &slow, &format!("linear fwd in{in_f} out{out_f} b{batch}"));
    }
}

#[test]
fn linear_backward_matches_naive_reference() {
    for &(in_f, out_f, batch) in &[(5usize, 3usize, 4usize), (16, 16, 2), (64, 2, 33)] {
        let mut lin = Linear::new(in_f, out_f, 9 + out_f as u64);
        let x = init::uniform(&[batch, in_f], -1.0, 1.0, 60 + batch as u64);
        let g = init::uniform(&[batch, out_f], -1.0, 1.0, 70 + batch as u64);
        let mut ws = Workspace::new();
        let (ref_gi, ref_gw, ref_gb) = lin.backward_reference(&x, &g);
        let _ = lin.forward(&x, &mut ws, true);
        lin.zero_grad();
        let gi = lin.backward(&g, &mut ws);
        let what = format!("linear bwd in{in_f} out{out_f} b{batch}");
        assert_close(&gi, &ref_gi, &format!("{what}: grad_input"));
        let params = lin.params_mut();
        assert_close(&params[0].grad, &ref_gw, &format!("{what}: grad_weight"));
        assert_close(&params[1].grad, &ref_gb, &format!("{what}: grad_bias"));
    }
}

#[test]
fn matmul_kernels_match_reference_on_ragged_shapes() {
    use tinynn::matmul::{matmul, matmul_par, matmul_reference};
    // Shapes straddling the NB=512 / KB=256 block boundaries.
    for &(m, k, n) in &[(3usize, 255usize, 511usize), (5, 257, 513), (2, 512, 1024)] {
        let a = init::uniform(&[m, k], -1.0, 1.0, 80).data().to_vec();
        let b = init::uniform(&[k, n], -1.0, 1.0, 81).data().to_vec();
        let expect = matmul_reference(&a, &b, m, k, n);
        let mut c = vec![0.0f32; m * n];
        matmul(&mut c, &a, &b, m, k, n);
        let mut cp = vec![0.0f32; m * n];
        matmul_par(&mut cp, &a, &b, m, k, n);
        assert_eq!(c, cp, "parallel split must not change results");
        for (i, (x, y)) in c.iter().zip(expect.iter()).enumerate() {
            assert!((x - y).abs() <= TOL * (1.0 + y.abs()), "matmul {m}x{k}x{n} at {i}");
        }
    }
}
