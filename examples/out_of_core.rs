//! Out-of-core locate: score a trace straight from disk in O(chunk) memory.
//!
//! A long synthetic capture is written to a raw-f32 trace file piece by
//! piece (this process never holds it whole), then located through a
//! [`FileTraceSource`] with `LocatorEngine::locate_streamed`. The streamed
//! result is compared against the in-memory path: the sliding-window scores
//! are bit-identical and the located starts equal, while the streamed pass
//! only ever touched one chunk of samples at a time.
//!
//! Run with: `cargo run --example out_of_core --release`

use sca_locate::locator::{
    CnnConfig, CoLocatorCnn, LocatorEngine, SegmentationConfig, Segmenter, SlidingWindowClassifier,
    ThresholdStrategy,
};
use sca_locate::trace::{FileTraceSource, TraceSource};

const TRACE_LEN: usize = 400_000;
const CHUNK_LEN: usize = 32_768;

fn main() {
    // Write the capture to disk in bounded pieces, as an acquisition box
    // streaming from an oscilloscope would.
    let path = std::env::temp_dir().join(format!("out_of_core_{}.bin", std::process::id()));
    {
        let file = std::fs::File::create(&path).expect("create trace file");
        let mut writer = std::io::BufWriter::new(file);
        let mut piece = Vec::with_capacity(CHUNK_LEN);
        let mut written = 0usize;
        while written < TRACE_LEN {
            piece.clear();
            let n = CHUNK_LEN.min(TRACE_LEN - written);
            piece.extend((written..written + n).map(|i| {
                let t = i as f32;
                (t * 0.011).sin() + 0.5 * (t * 0.19).sin()
            }));
            sca_locate::trace::io::write_samples_binary(&mut writer, &piece)
                .expect("write trace piece");
            written += n;
        }
    }

    // An engine as `LocatorBuilder::fit` would produce it (an untrained CNN
    // keeps the example fast; the plumbing is identical).
    let engine = LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 9 }),
        SlidingWindowClassifier::new(128, 32).with_batch_size(64),
        // MidRange derives the threshold from the whole score signal, so the
        // streaming segmenter buffers the (stride-decimated) scores; with a
        // `Fixed` threshold it would run in O(median filter size) instead.
        // The trace samples stay O(chunk) either way.
        Segmenter::new(SegmentationConfig {
            threshold: ThresholdStrategy::MidRange,
            median_filter_k: 5,
            min_distance_windows: 4,
        }),
    );

    let source = FileTraceSource::open(&path).expect("open trace file");
    println!(
        "trace file: {} samples ({} KiB), scored in {}-sample chunks ({} KiB each)",
        source.len(),
        source.len() * 4 / 1024,
        CHUNK_LEN,
        CHUNK_LEN * 4 / 1024
    );

    let streamed = engine.locate_streamed(&source, CHUNK_LEN).expect("streamed locate");
    println!("streamed locate found {} CO starts", streamed.len());

    // Cross-check against the in-memory path: same starts, bit-identical
    // scores.
    let trace = source.read_all().expect("load trace fully");
    let (swc_mem, in_memory) = engine.locate_detailed(&trace);
    assert_eq!(streamed, in_memory, "streamed and in-memory starts must agree");
    let swc_stream = engine
        .sliding()
        .classify_source(engine.model(), &source, CHUNK_LEN)
        .expect("streamed scores");
    assert!(
        swc_stream.iter().zip(swc_mem.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
        "streamed swc must be bit-identical to the in-memory signal"
    );
    println!(
        "parity: {} swc scores bit-identical, starts equal — out-of-core path verified",
        swc_stream.len()
    );

    std::fs::remove_file(&path).ok();
}
