//! Locating a *protected* cipher: the boolean-masked AES-128 ("AES mask" in
//! Table I). Masked implementations re-randomise their intermediate values at
//! every execution, so their traces are far more variable — the locator must
//! rely on the structural power shape rather than on data-dependent details.
//!
//! Run with: `cargo run --example masked_cipher --release`

use sca_locate::ciphers::{cipher_by_id, CipherId};
use sca_locate::locator::{hit_rate, CipherProfile, LocatorBuilder};
use sca_locate::soc::{Scenario, SocSimulator, SocSimulatorConfig};

fn main() {
    let cipher = CipherId::MaskedAes128;
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(4), 99);

    let mean_co = sim.mean_co_samples(cipher, 6);
    let profile = CipherProfile::scaled(cipher, mean_co.round() as usize);
    println!("masked AES mean CO length under RD-4: {mean_co:.0} samples");

    let cipher_impl = cipher_by_id(cipher);
    let key = Scenario::DEFAULT_KEY;
    let mut cipher_traces = Vec::new();
    for _ in 0..64 {
        let pt = sim.trng_mut().next_block();
        let (trace, _) = sim.capture_cipher_trace(cipher_impl.as_ref(), &key, &pt);
        cipher_traces.push(trace);
    }
    let noise_trace = sim.capture_noise_trace(10_000);
    let (locator, report) =
        LocatorBuilder::from_profile(&profile).fit(&cipher_traces, &noise_trace);
    println!("best validation accuracy: {:.1}%", 100.0 * report.best_validation_accuracy());

    // Evaluate on a noise-interleaved scenario (the hardest setting).
    let result = sim.run_scenario(&Scenario::interleaved(cipher, 10));
    let located = locator.locate(&result.trace);
    let hits = hit_rate(&located, &result.co_starts(), (result.mean_co_len() / 2.0) as usize);
    println!(
        "masked AES localisation: {}/{} COs found ({:.1}%), {} false candidates",
        hits.hits,
        hits.total,
        hits.percentage(),
        hits.false_positives
    );
}
