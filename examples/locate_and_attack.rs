//! The complete attack flow of Section IV-C: locate the AES-128 executions in
//! a protected trace, align them, and run a CPA attack on the SubBytes output
//! to recover key bytes.
//!
//! Run with: `cargo run --example locate_and_attack --release`

use sca_locate::attack::{CpaAttack, CpaConfig};
use sca_locate::ciphers::{cipher_by_id, CipherId};
use sca_locate::locator::{Aligner, CipherProfile, LocatorBuilder};
use sca_locate::soc::{Scenario, SocSimulator, SocSimulatorConfig};

fn main() {
    let cipher = CipherId::Aes128;
    let rd = 2;
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(rd), 7);

    // Profiling phase on the clone device.
    let mean_co = sim.mean_co_samples(cipher, 8);
    let profile = CipherProfile::scaled(cipher, mean_co.round() as usize);
    let cipher_impl = cipher_by_id(cipher);
    let key = Scenario::DEFAULT_KEY;
    let mut cipher_traces = Vec::new();
    for _ in 0..80 {
        let pt = sim.trng_mut().next_block();
        let (trace, _) = sim.capture_cipher_trace(cipher_impl.as_ref(), &key, &pt);
        cipher_traces.push(trace);
    }
    let noise_trace = sim.capture_noise_trace(10_000);
    println!("training the locator for AES-128 under RD-{rd} ...");
    let (locator, report) =
        LocatorBuilder::from_profile(&profile).fit(&cipher_traces, &noise_trace);
    println!("best validation accuracy: {:.1}%", 100.0 * report.best_validation_accuracy());

    // Attack phase on the target device: a long trace with many AES executions.
    let n_cos = 48;
    let result = sim.run_scenario(&Scenario::consecutive(cipher, n_cos));
    let located = locator.locate(&result.trace);
    println!("located {} CO start candidates ({} true COs)", located.len(), result.cos.len());

    // Align and attack. The attacker knows the plaintext fed to each CO (as in
    // a standard known-plaintext CPA acquisition campaign).
    let co_len = result.mean_co_len().round() as usize;
    let (aligned, dropped) = Aligner::new(co_len).align(&result.trace, &located);
    let tolerance = co_len / 2;
    let kept: Vec<usize> = (0..located.len()).filter(|i| !dropped.contains(i)).collect();
    let mut traces = Vec::new();
    let mut plaintexts = Vec::new();
    for (segment, &idx) in aligned.iter().zip(kept.iter()) {
        if let Some(co) =
            result.cos.iter().find(|c| c.start_sample.abs_diff(located[idx]) <= tolerance)
        {
            traces.push(segment.clone());
            plaintexts.push(co.plaintext);
        }
    }
    println!("running CPA over {} aligned COs (4 key bytes, HW of SubBytes output)", traces.len());
    let config = CpaConfig { num_key_bytes: 4, aggregation_window: 8, ..CpaConfig::default() };
    let (attack, progress) = CpaAttack::run(&traces, &plaintexts, &result.key, config, 8);

    let guesses = attack.best_guesses();
    println!("true key bytes   : {:02x?}", &result.key[..4]);
    println!("recovered guesses: {:02x?}", &guesses[..4]);
    match progress.cos_to_rank1 {
        Some(n) => println!("all attacked bytes reached rank 1 after {n} located COs"),
        None => println!(
            "key not fully recovered with {} COs (rank evolution: {:?})",
            traces.len(),
            progress.checkpoints
        ),
    }
}
