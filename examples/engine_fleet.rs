//! Fleet serving with the engine API: train a locator once, persist it, and
//! stream a whole batch of captured traces through one shared weight set with
//! [`LocatorEngine::locate_batch`].
//!
//! This is the profile-once / score-many workflow of the paper's evaluation
//! (one trained CNN per cipher applied to entire trace sets): the engine is
//! `&self`-callable, so the batch path shares a single copy of the weights
//! across every scoring thread instead of cloning the CNN per shard.
//!
//! Run with: `cargo run --example engine_fleet --release`

use sca_locate::ciphers::CipherId;
use sca_locate::locator::{hit_rate, CipherProfile, LocatorBuilder, LocatorEngine};
use sca_locate::soc::{Scenario, SocSimulator, SocSimulatorConfig};
use std::time::Instant;

fn main() {
    // 1. Profile phase: train the locator on the attacker's clone device.
    let cipher = CipherId::Aes128;
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(2), 1234);
    let mean_co = sim.mean_co_samples(cipher, 8);
    let profile = CipherProfile::scaled(cipher, mean_co.round() as usize);
    let cipher_impl = sca_locate::ciphers::cipher_by_id(cipher);
    let key = Scenario::DEFAULT_KEY;
    let mut cipher_traces = Vec::new();
    for _ in 0..64 {
        let pt = sim.trng_mut().next_block();
        let (trace, _) = sim.capture_cipher_trace(cipher_impl.as_ref(), &key, &pt);
        cipher_traces.push(trace);
    }
    let noise_trace = sim.capture_noise_trace(8_000);
    let (locator, report) =
        LocatorBuilder::from_profile(&profile).fit(&cipher_traces, &noise_trace);
    println!("trained: best validation accuracy {:.1}%", 100.0 * report.best_validation_accuracy());

    // 2. Persist the profile; a scoring fleet loads it instead of retraining.
    let model_path = std::env::temp_dir().join("engine_fleet.model");
    locator.into_engine().save(&model_path).expect("save model");
    let engine = LocatorEngine::load(&model_path).expect("load model");
    std::fs::remove_file(&model_path).ok();

    // 3. Serve: capture a fleet of target traces and score them in one call.
    let results: Vec<_> =
        (0..6).map(|i| sim.run_scenario(&Scenario::interleaved(cipher, 4 + i % 3))).collect();
    let traces: Vec<_> = results.iter().map(|r| r.trace.clone()).collect();
    let total_samples: usize = traces.iter().map(|t| t.len()).sum();
    let t0 = Instant::now();
    let located = engine.locate_batch(&traces);
    let elapsed = t0.elapsed();
    println!(
        "scored {} traces ({} samples) in {:.2?} ({:.2} traces/s)",
        traces.len(),
        total_samples,
        elapsed,
        traces.len() as f64 / elapsed.as_secs_f64()
    );

    // 4. Report per-trace hit rates against the simulation ground truth.
    for (i, (result, starts)) in results.iter().zip(located.iter()).enumerate() {
        let tolerance = (result.mean_co_len() / 2.0) as usize;
        let hits = hit_rate(starts, &result.co_starts(), tolerance);
        println!(
            "trace {i}: {:>2} located, hits {}/{} ({:.1}%)",
            starts.len(),
            hits.hits,
            hits.total,
            hits.percentage()
        );
    }
}
