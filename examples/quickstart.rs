//! Quickstart: simulate a protected device, train the CNN locator, and find
//! the cryptographic operations in an unknown trace — then persist the
//! trained model with the engine API and serve from the reloaded copy.
//!
//! Run with: `cargo run --example quickstart --release`

use sca_locate::ciphers::{cipher_by_id, CipherId};
use sca_locate::locator::{hit_rate, CipherProfile, LocatorBuilder, LocatorEngine};
use sca_locate::soc::{Scenario, SocSimulator, SocSimulatorConfig};

fn main() {
    // 1. The attacker's clone device: a simulated SoC with the RD-2 random
    //    delay countermeasure permanently enabled.
    let cipher = CipherId::Simon128;
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(2), 42);

    // 2. Acquire training material: cipher traces (one CO each, located via
    //    the NOP preamble) and a noise trace of other applications.
    let mean_co = sim.mean_co_samples(cipher, 8);
    let profile = CipherProfile::scaled(cipher, mean_co.round() as usize);
    println!("mean {} CO length on this platform: {:.0} samples", cipher, mean_co);
    println!(
        "pipeline parameters: N_train={} N_inf={} stride={}",
        profile.n_train, profile.n_inf, profile.stride
    );

    let cipher_impl = cipher_by_id(cipher);
    let key = Scenario::DEFAULT_KEY;
    let mut cipher_traces = Vec::new();
    for _ in 0..64 {
        let pt = sim.trng_mut().next_block();
        let (trace, _ct) = sim.capture_cipher_trace(cipher_impl.as_ref(), &key, &pt);
        cipher_traces.push(trace);
    }
    let noise_trace = sim.capture_noise_trace(8_000);

    // 3. Train the CNN-based locator.
    let (locator, report) =
        LocatorBuilder::from_profile(&profile).fit(&cipher_traces, &noise_trace);
    println!(
        "trained CNN, best validation accuracy: {:.1}%",
        100.0 * report.best_validation_accuracy()
    );

    // 4. Persist the trained model with the engine API (profile once, serve
    //    many): save to disk and reload, as a scoring fleet would.
    let engine = locator.into_engine();
    let model_path = std::env::temp_dir().join("quickstart_colocator.model");
    engine.save(&model_path).expect("save trained model");
    let served = LocatorEngine::load(&model_path).expect("load trained model");
    println!(
        "saved model to {} ({} bytes) and reloaded it",
        model_path.display(),
        std::fs::metadata(&model_path).map(|m| m.len()).unwrap_or(0)
    );
    std::fs::remove_file(&model_path).ok();

    // 5. Locate the COs in a fresh trace from the *target* device: 8 cipher
    //    executions interleaved with other applications. `locate` takes
    //    `&self`, so `served` could be shared by any number of threads.
    let result = sim.run_scenario(&Scenario::interleaved(cipher, 8));
    let located = served.locate(&result.trace);

    // 6. Compare with the (simulation-provided) ground truth.
    let tolerance = (result.mean_co_len() / 2.0) as usize;
    let hits = hit_rate(&located, &result.co_starts(), tolerance);
    println!(
        "located {} candidate starts in a {}-sample trace; hits {}/{} ({:.1}%)",
        located.len(),
        result.trace.len(),
        hits.hits,
        hits.total,
        hits.percentage()
    );
}
