//! Why pattern matching fails under random delay: compare the CNN locator
//! against the matched-filter and SAD baselines on the same protected trace
//! (the qualitative story behind Table II).
//!
//! Run with: `cargo run --example baseline_comparison --release`

use sca_locate::baselines::{BaselineLocator, MatchedFilterLocator, SadTemplateLocator};
use sca_locate::ciphers::{cipher_by_id, CipherId};
use sca_locate::locator::{hit_rate, CipherProfile, LocatorBuilder};
use sca_locate::soc::{Scenario, SocSimulator, SocSimulatorConfig};

fn main() {
    let cipher = CipherId::Camellia128;
    let rd = 4;

    // Template for the baselines: acquired on an *unprotected* clone (their
    // best case — a clean, delay-free reference waveform).
    let mut clean_sim = SocSimulator::new(SocSimulatorConfig::rd(0), 11);
    let cipher_impl = cipher_by_id(cipher);
    let key = Scenario::DEFAULT_KEY;
    let mut refs: Vec<Vec<f32>> = Vec::new();
    let mut min_len = usize::MAX;
    for _ in 0..8 {
        let pt = clean_sim.trng_mut().next_block();
        let (trace, _) = clean_sim.capture_cipher_trace(cipher_impl.as_ref(), &key, &pt);
        let co = trace.samples()[trace.meta().co_starts[0]..trace.meta().co_ends[0]].to_vec();
        min_len = min_len.min(co.len());
        refs.push(co);
    }
    refs.iter_mut().for_each(|r| r.truncate(min_len));
    let template = MatchedFilterLocator::template_from_references(&refs);

    // Training material for the CNN locator: acquired *with* the countermeasure.
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(rd), 12);
    let mean_co = sim.mean_co_samples(cipher, 8);
    let profile = CipherProfile::scaled(cipher, mean_co.round() as usize);
    let mut cipher_traces = Vec::new();
    for _ in 0..64 {
        let pt = sim.trng_mut().next_block();
        let (trace, _) = sim.capture_cipher_trace(cipher_impl.as_ref(), &key, &pt);
        cipher_traces.push(trace);
    }
    let noise_trace = sim.capture_noise_trace(8_000);
    let (cnn_locator, _) = LocatorBuilder::from_profile(&profile).fit(&cipher_traces, &noise_trace);

    // One protected trace with 12 COs interleaved with noise applications.
    let result = sim.run_scenario(&Scenario::interleaved(cipher, 12));
    let tolerance = (result.mean_co_len() / 2.0) as usize;

    let matched = MatchedFilterLocator::new(template.clone(), 0.85, template.len() / 2);
    let sad = SadTemplateLocator::new(template.clone(), 0.05, template.len() / 2);

    println!("{} COs under RD-{rd}, interleaved with noise applications\n", result.cos.len());
    for (name, located) in [
        ("matched filter [10]", matched.locate(&result.trace)),
        ("SAD template   [11]", sad.locate(&result.trace)),
        ("this work (CNN)    ", cnn_locator.locate(&result.trace)),
    ] {
        let hits = hit_rate(&located, &result.co_starts(), tolerance);
        println!(
            "{name}: {:>5.1}% hits ({} located, {} false candidates)",
            hits.percentage(),
            located.len(),
            hits.false_positives
        );
    }
}
