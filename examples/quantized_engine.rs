//! Quantised serving-path demo: derive an `i8` engine from an `f32` engine,
//! compare their scores, and roundtrip the v2 model format.
//!
//! Run with: `cargo run --release --example quantized_engine`

use sca_locator::{CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier};
use sca_trace::Trace;

fn main() {
    // Normally the f32 engine comes out of `LocatorBuilder::fit(...)`; an
    // untrained network keeps the example fast.
    let engine = LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig::scaled()),
        SlidingWindowClassifier::new(128, 32),
        Segmenter::default(),
    );

    // One call: per-channel symmetric i8 weights, batch norms folded into
    // the convolutions, same `locate`/`locate_batch` API.
    let quantized = engine.quantize();
    assert!(quantized.is_quantized());

    let trace = Trace::from_samples((0..40_000).map(|i| (i as f32 * 0.013).sin() * 0.8).collect());
    let (f32_scores, f32_starts) = engine.locate_detailed(&trace);
    let (q_scores, q_starts) = quantized.locate_detailed(&trace);
    let max_div =
        f32_scores.iter().zip(q_scores.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    println!("scored {} windows: max |i8 - f32| score divergence {max_div:.2e}", f32_scores.len());
    let matching = f32_starts.iter().filter(|s| q_starts.contains(s)).count();
    println!(
        "located starts: f32 {} / i8 {} ({matching} matching)",
        f32_starts.len(),
        q_starts.len()
    );

    // Persist the quantised engine (format v2: i8 blocks + f32 scale
    // vectors) and reload it — scores reproduce bit-exactly.
    let dir = std::env::temp_dir();
    let v1 = dir.join(format!("quant_demo_{}.v1", std::process::id()));
    let v2 = dir.join(format!("quant_demo_{}.v2", std::process::id()));
    engine.save(&v1).expect("save f32 model");
    quantized.save(&v2).expect("save quantised model");
    let v1_bytes = std::fs::metadata(&v1).map(|m| m.len()).unwrap_or(0);
    let v2_bytes = std::fs::metadata(&v2).map(|m| m.len()).unwrap_or(0);
    println!(
        "model files: v1 {v1_bytes} bytes, v2 {v2_bytes} bytes ({:.1}x smaller)",
        v1_bytes as f64 / v2_bytes.max(1) as f64
    );

    let restored = LocatorEngine::load(&v2).expect("load quantised model");
    assert!(restored.is_quantized());
    let (r_scores, _) = restored.locate_detailed(&trace);
    assert!(
        r_scores.iter().zip(q_scores.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
        "v2 roundtrip must reproduce scores bit-exactly"
    );
    println!("v2 save → load roundtrip reproduced every score bit-exactly");

    std::fs::remove_file(&v1).ok();
    std::fs::remove_file(&v2).ok();
}
