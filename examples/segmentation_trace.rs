//! Qualitative view of the inference pipeline (the right-hand side of
//! Figure 1): dump the sliding-window classification signal, the thresholded
//! square wave and the located starts for one trace, as an ASCII plot.
//!
//! Run with: `cargo run --example segmentation_trace --release`

use sca_locate::ciphers::{cipher_by_id, CipherId};
use sca_locate::locator::{CipherProfile, LocatorBuilder};
use sca_locate::soc::{Scenario, SocSimulator, SocSimulatorConfig};

fn ascii_plot(label: &str, values: &[f32], width: usize) {
    let min = values.iter().copied().fold(f32::INFINITY, f32::min);
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let range = (max - min).max(1e-6);
    let step = (values.len() as f64 / width as f64).max(1.0);
    let mut line = String::new();
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    for i in 0..width.min(values.len()) {
        let idx = (i as f64 * step) as usize;
        let v = (values[idx.min(values.len() - 1)] - min) / range;
        let g = ((v * (glyphs.len() - 1) as f32).round() as usize).min(glyphs.len() - 1);
        line.push(glyphs[g]);
    }
    println!("{label:<14} |{line}|");
}

fn main() {
    let cipher = CipherId::Simon128;
    let mut sim = SocSimulator::new(SocSimulatorConfig::rd(2), 5);
    let mean_co = sim.mean_co_samples(cipher, 8);
    let profile = CipherProfile::scaled(cipher, mean_co.round() as usize);
    let cipher_impl = cipher_by_id(cipher);
    let key = Scenario::DEFAULT_KEY;
    let mut cipher_traces = Vec::new();
    for _ in 0..48 {
        let pt = sim.trng_mut().next_block();
        let (trace, _) = sim.capture_cipher_trace(cipher_impl.as_ref(), &key, &pt);
        cipher_traces.push(trace);
    }
    let noise_trace = sim.capture_noise_trace(6_000);
    let (locator, _) = LocatorBuilder::from_profile(&profile).fit(&cipher_traces, &noise_trace);

    let result = sim.run_scenario(&Scenario::interleaved(cipher, 5));
    let (swc, starts) = locator.locate_detailed(&result.trace);

    println!("trace of {} samples containing {} COs\n", result.trace.len(), result.cos.len());
    ascii_plot("power trace", result.trace.samples(), 100);
    ascii_plot("swc signal", &swc, 100);
    // Mark true and located starts on a 100-column ruler.
    let mut truth_line = vec![' '; 100];
    let mut found_line = vec![' '; 100];
    for &t in &result.co_starts() {
        truth_line[(t * 100 / result.trace.len().max(1)).min(99)] = 'T';
    }
    for &f in &starts {
        found_line[(f * 100 / result.trace.len().max(1)).min(99)] = 'L';
    }
    println!("{:<14} |{}|", "true starts", truth_line.iter().collect::<String>());
    println!("{:<14} |{}|", "located", found_line.iter().collect::<String>());
    println!("\nlocated start samples: {starts:?}");
    println!("true start samples   : {:?}", result.co_starts());
}
