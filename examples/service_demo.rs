//! Serving demo: one `LocatorService`, many concurrent clients, three
//! ingest paths.
//!
//! A service is started over a single engine, then hit simultaneously by
//!
//! 1. four in-process client threads submitting in-memory traces,
//! 2. a TCP client speaking the `SCLQ`/`SCLR` frame protocol (one buffered
//!    and one streamed-ingest request on the same connection), and
//! 3. an acquisition pipeline feeding samples through an OS pipe — the
//!    service scores the trace *while it is being produced*, via
//!    [`sca_locate::trace::SequentialTraceSource`], never holding more
//!    than one chunk in memory.
//!
//! Every result is checked bit-identical to the direct `locate` /
//! `locate_streamed` call, and the service's own metrics (batch fill,
//! latency quantiles, queue gauges) are printed at the end.
//!
//! Run with: `cargo run --example service_demo --release`

use sca_locate::locator::{
    CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier,
};
use sca_locate::service::net::{self, Client, ServerConfig, Status, FLAG_STREAMED};
use sca_locate::service::{LocatorService, RequestOptions, ServiceConfig};
use sca_locate::trace::Trace;
use std::io::Write;
use std::sync::Arc;

const TRACE_LEN: usize = 120_000;
const PIPE_TRACE_LEN: usize = 300_000;
const CHUNK_LEN: usize = 32_768;

fn synthetic_trace(len: usize, seed: u64) -> Trace {
    let mut state = 0x0123_4567_89AB_CDEF_u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    Trace::from_samples(
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                let t = i as f32;
                (t * 0.011).sin() + 0.5 * (t * 0.19).sin() + 0.25 * noise
            })
            .collect(),
    )
}

fn build_engine() -> LocatorEngine {
    // An untrained CNN keeps the demo fast; the serving plumbing is
    // identical to a fitted engine's.
    LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig { base_filters: 2, kernel_size: 3, seed: 9 }),
        SlidingWindowClassifier::new(128, 32).with_batch_size(64),
        Segmenter::default(),
    )
}

fn main() {
    let service = Arc::new(LocatorService::start(
        vec![build_engine()],
        ServiceConfig { queue_capacity: 32, ..ServiceConfig::default() },
    ));
    let model = "model-0";
    let reference = build_engine();

    // --- 1. in-process clients ---------------------------------------------
    let in_process = std::thread::spawn({
        let service = Arc::clone(&service);
        move || {
            std::thread::scope(|scope| {
                for client in 0..4u64 {
                    let service = &service;
                    scope.spawn(move || {
                        for round in 0..2u64 {
                            let seed = client * 10 + round;
                            let trace = synthetic_trace(TRACE_LEN, seed);
                            let ticket = service
                                .submit_trace(model, trace, RequestOptions::default())
                                .expect("queue sized for the demo");
                            let result = ticket.wait().expect("request completes");
                            println!(
                                "[thread {client}] round {round}: {} COs in {:?}",
                                result.starts.len(),
                                result.latency
                            );
                        }
                    });
                }
            });
        }
    });

    // --- 2. a TCP client over the frame protocol ---------------------------
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server =
        net::serve(Arc::clone(&service), listener, ServerConfig::default()).expect("serve");
    let tcp = std::thread::spawn({
        let addr = server.addr();
        move || {
            let mut client = Client::connect(addr).expect("connect");
            for (flags, label) in [(0, "buffered"), (FLAG_STREAMED, "streamed")] {
                let trace = synthetic_trace(TRACE_LEN, 77);
                let response =
                    client.locate(model, flags, 0, trace.samples()).expect("tcp roundtrip");
                assert_eq!(response.status, Status::Ok);
                println!("[tcp] {label}: {} COs over the wire", response.starts.len());
            }
        }
    });

    // --- 3. pipe-fed acquisition: score while the producer writes ----------
    let (reader, mut writer) = std::io::pipe().expect("pipe");
    let producer = std::thread::spawn(move || {
        // Emits the capture in small pieces, like an oscilloscope DMA.
        let trace = synthetic_trace(PIPE_TRACE_LEN, 5);
        let mut bytes = Vec::with_capacity(CHUNK_LEN * 4);
        for piece in trace.samples().chunks(CHUNK_LEN) {
            bytes.clear();
            for s in piece {
                bytes.extend_from_slice(&s.to_le_bytes());
            }
            writer.write_all(&bytes).expect("feed pipe");
        }
    });
    let opts = RequestOptions { chunk_len: Some(CHUNK_LEN), ..RequestOptions::default() };
    let pipe_ticket =
        service.submit_reader(model, reader, PIPE_TRACE_LEN, opts).expect("submit pipe ingest");

    let pipe_result = pipe_ticket.wait().expect("pipe request completes");
    producer.join().expect("producer thread");
    let expected = reference
        .locate_streamed(&synthetic_trace(PIPE_TRACE_LEN, 5), CHUNK_LEN)
        .expect("reference streamed locate");
    assert_eq!(pipe_result.starts, expected, "pipe ingest must match locate_streamed");
    println!(
        "[pipe] {} samples scored during acquisition -> {} COs (bit-identical to locate_streamed)",
        PIPE_TRACE_LEN,
        pipe_result.starts.len()
    );

    in_process.join().expect("in-process clients");
    tcp.join().expect("tcp client");
    server.stop();

    // Verify one in-memory submission against the direct engine call.
    let trace = synthetic_trace(TRACE_LEN, 0);
    let direct = reference.locate(&trace);
    let served = service
        .submit_trace(model, trace, RequestOptions::default())
        .expect("submit")
        .wait()
        .expect("request completes");
    assert_eq!(served.starts, direct, "served result must match the direct engine call");

    let m = service.metrics();
    println!(
        "metrics: {} completed, {} batches (fill {:.2}), p50 {:?}, p99 {:?}",
        m.completed, m.batches, m.batch_fill_ratio, m.p50_latency, m.p99_latency
    );
    Arc::try_unwrap(service).expect("all clients joined").shutdown();
    println!("drained and shut down cleanly");
}
