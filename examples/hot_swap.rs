//! Multi-model serving demo: one engine process, N scenarios, operated
//! live.
//!
//! Two scenario models are saved as SCALOCEN files and *registered* —
//! not loaded — with a [`sca_locate::service::ModelRegistry`] under a byte
//! budget that fits roughly one of them. The demo then walks the three
//! registry behaviours an operator relies on:
//!
//! 1. **Lazy cold loads + LRU eviction** — the first request for each
//!    scenario faults its file in; the byte budget forces the
//!    least-recently-used model out, and a later request transparently
//!    reloads it, bit-identical.
//! 2. **Generation pinning across hot swap** — a request fed through an OS
//!    pipe is admitted against generation 1, *then* the model is swapped.
//!    When the pipe finally delivers its samples the request still scores
//!    against the weights it was admitted with, while new submissions route
//!    to generation 2.
//! 3. **Admin frames over TCP** — a `SCLA`-speaking client (enabled with
//!    [`ServerConfig::allow_admin`]) swaps and evicts models over the wire.
//!
//! Run with: `cargo run --example hot_swap --release`

use sca_locate::locator::{
    CnnConfig, CoLocatorCnn, LocatorEngine, Segmenter, SlidingWindowClassifier,
};
use sca_locate::service::net::{self, Client, ServerConfig, Status};
use sca_locate::service::{
    LocatorService, ModelRegistry, RegistryConfig, RequestOptions, ServiceConfig,
};
use sca_locate::trace::Trace;
use std::io::Write;
use std::sync::Arc;

const TRACE_LEN: usize = 60_000;

fn synthetic_trace(seed: u64) -> Trace {
    let mut state = 0x0123_4567_89AB_CDEF_u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    Trace::from_samples(
        (0..TRACE_LEN)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                let t = i as f32;
                (t * 0.011).sin() + 0.5 * (t * 0.19).sin() + 0.25 * noise
            })
            .collect(),
    )
}

fn build_engine(seed: u64) -> LocatorEngine {
    // Untrained weights keep the demo fast; the registry plumbing is
    // identical to fitted engines'.
    LocatorEngine::new(
        CoLocatorCnn::new(CnnConfig { base_filters: 4, kernel_size: 5, seed }),
        SlidingWindowClassifier::new(128, 32).with_batch_size(64),
        Segmenter::default(),
    )
}

fn main() {
    let dir = std::env::temp_dir();
    let aes_v1 = dir.join(format!("hot_swap_aes_v1_{}", std::process::id()));
    let aes_v2 = dir.join(format!("hot_swap_aes_v2_{}", std::process::id()));
    let clefia = dir.join(format!("hot_swap_clefia_{}", std::process::id()));
    build_engine(1).save(&aes_v1).expect("save aes v1");
    build_engine(2).save(&aes_v2).expect("save aes v2");
    build_engine(3).save(&clefia).expect("save clefia");

    // A budget of ~1.5 models forces the LRU dance between the scenarios.
    let budget = build_engine(1).memory_footprint() * 3 / 2;
    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        byte_budget: budget,
        ..RegistryConfig::default()
    }));
    registry.register("aes", &aes_v1).expect("register aes");
    registry.register("clefia", &clefia).expect("register clefia");
    let service =
        Arc::new(LocatorService::with_registry(Arc::clone(&registry), ServiceConfig::default()));

    // --- 1. lazy loads under the byte budget -------------------------------
    println!("byte budget: {budget} B, loads before first request: {}", registry.stats().loads);
    let trace = synthetic_trace(7);
    let aes_starts = {
        let ticket = service.submit_trace("aes", trace.clone(), RequestOptions::default());
        ticket.expect("submit aes").wait().expect("aes completes").starts
    };
    let clefia_starts = {
        let ticket = service.submit_trace("clefia", trace.clone(), RequestOptions::default());
        ticket.expect("submit clefia").wait().expect("clefia completes").starts
    };
    let s = registry.stats();
    println!(
        "after both scenarios: {} loads, {} evictions, {} resident ({} B <= budget)",
        s.loads, s.evictions, s.resident_models, s.resident_bytes
    );
    assert!(s.resident_bytes <= budget as u64, "eviction must keep the budget");
    // Re-requesting the evicted scenario reloads it transparently.
    let again = service
        .submit_trace("aes", trace.clone(), RequestOptions::default())
        .expect("submit aes again")
        .wait()
        .expect("aes reload completes");
    assert_eq!(again.starts, aes_starts, "reload after eviction is bit-identical");
    assert_eq!(clefia_starts, build_engine(3).locate(&trace), "served == direct locate");
    println!("evicted scenario reloaded bit-identically ({} loads total)", registry.stats().loads);

    // --- 2. a pipe-fed request pins its generation across a swap -----------
    let (reader, mut writer) = std::io::pipe().expect("pipe");
    let pinned = service
        .submit_reader("aes", reader, trace.len(), RequestOptions::default())
        .expect("admitted against generation 1");
    let new_generation = registry.swap("aes", &aes_v2).expect("hot swap");
    println!("swapped aes to generation {new_generation} with a request in flight");
    let mut bytes = Vec::with_capacity(trace.len() * 4);
    for sample in trace.samples() {
        bytes.extend_from_slice(&sample.to_le_bytes());
    }
    writer.write_all(&bytes).expect("feed pipe");
    drop(writer);
    let old = pinned.wait().expect("pinned request completes");
    assert_eq!(old.generation, 1, "admitted before the swap");
    assert_eq!(old.starts, aes_starts, "still scored by the generation it was admitted with");
    let new = service
        .submit_trace("aes", trace.clone(), RequestOptions::default())
        .expect("submit against generation 2")
        .wait()
        .expect("new generation serves");
    assert_eq!(new.generation, 2);
    assert_eq!(new.starts, build_engine(2).locate(&trace), "new admissions use the new weights");
    println!("in-flight request held generation 1; fresh requests score with generation 2");

    // --- 3. swap and evict over the wire -----------------------------------
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = net::serve(
        Arc::clone(&service),
        listener,
        ServerConfig { allow_admin: true, ..ServerConfig::default() },
    )
    .expect("serve");
    let mut client = Client::connect(server.addr()).expect("connect");
    let swapped = client.swap("aes", aes_v1.to_str().expect("utf-8 path")).expect("admin swap");
    assert_eq!(swapped.status, Status::Ok);
    println!("admin frame swapped aes to generation {}", swapped.starts[0]);
    assert_eq!(client.evict("clefia").expect("admin evict").status, Status::Ok);
    let response = client.locate("aes", 0, 0, trace.samples()).expect("locate over the wire");
    assert_eq!(response.status, Status::Ok);
    let wire_starts: Vec<usize> = response.starts.iter().map(|&s| s as usize).collect();
    assert_eq!(wire_starts, aes_starts, "generation 3 == the v1 weights again");
    server.stop();

    let m = service.metrics();
    println!(
        "metrics: {} models ({} resident, {} B), {} loads, {} evictions, {} swaps",
        m.models,
        m.resident_models,
        m.resident_bytes,
        m.model_loads,
        m.model_evictions,
        m.model_swaps
    );
    Arc::try_unwrap(service).expect("all clients joined").shutdown();
    for path in [&aes_v1, &aes_v2, &clefia] {
        std::fs::remove_file(path).ok();
    }
    println!("shut down cleanly");
}
