#!/usr/bin/env sh
# Runs the concurrent serving stack under the dynamic-analysis trio:
#
#   tsan  ThreadSanitizer over the locsvc concurrency suites
#         (service_parity, registry_swap, chaos) and the engine's
#         concurrent_engine suite — the tests that exercise the
#         scheduler's cross-thread claim/output/state protocol and the
#         fault-injection counters shared across workers.
#   asan  AddressSanitizer over the qsimd kernel tests and the tinynn
#         quantisation property tests — the code with raw-pointer SIMD
#         and hand-rolled packing arithmetic.
#   miri  Miri over qsimd. The AVX2 dispatch reports unavailable under
#         the interpreter (see `qsimd::avx2::available`), so this pass
#         covers the scalar fallbacks and the packing/layout paths,
#         where Miri's UB detection is strongest.
#
# Sanitizers need a nightly toolchain (-Zsanitizer, -Zbuild-std) plus
# the rust-src component; Miri needs the miri component. A missing
# prerequisite SKIPS that phase with a warning on stderr and does NOT
# count as a pass. Set SANITIZE_STRICT=1 (as CI does) to turn skips
# into failures so a broken toolchain install cannot go green.
#
# usage: sanitize.sh [all|tsan|asan|miri]    (default: all)

set -eu

if [ "$#" -gt 1 ]; then
    echo "usage: $0 [all|tsan|asan|miri]" >&2
    exit 2
fi
phase="${1:-all}"
strict="${SANITIZE_STRICT:-0}"

# Sanitized builds must restate the workspace's CPU baseline: RUSTFLAGS
# replaces .cargo/config.toml's rustflags wholesale, and losing
# -C target-cpu=x86-64-v3 would silently drop the AVX2 kernels from the
# configuration under test.
cpu="-C target-cpu=x86-64-v3"
# Pinning --target (even to the host triple) keeps RUSTFLAGS off build
# scripts and proc-macros, which must not be instrumented.
triple=x86_64-unknown-linux-gnu

failures=0
skips=0

note() {
    echo "sanitize: $*"
}

# skip <phase> <reason>: records an explicit skip — loudly, and fatally
# under SANITIZE_STRICT=1.
skip() {
    skips=$((skips + 1))
    if [ "$strict" = "1" ]; then
        echo "sanitize: FAIL: $1 skipped under SANITIZE_STRICT=1: $2" >&2
        failures=$((failures + 1))
    else
        echo "sanitize: WARNING: $1 SKIPPED ($2) — this is not a pass" >&2
    fi
}

# ran <phase> <status>: folds one cargo exit status into the tally.
ran() {
    if [ "$2" -ne 0 ]; then
        echo "sanitize: FAIL: $1 reported errors (exit $2)" >&2
        failures=$((failures + 1))
    fi
}

have_nightly() {
    rustup run nightly rustc --version >/dev/null 2>&1
}

# have_component <name>: true if the nightly toolchain has <name> installed.
have_component() {
    rustup component list --toolchain nightly 2>/dev/null \
        | grep -q "^$1.*(installed)"
}

run_tsan() {
    if ! have_nightly; then
        skip tsan "no nightly toolchain (rustup toolchain install nightly)"
        return 0
    fi
    if ! have_component rust-src; then
        skip tsan "nightly lacks rust-src (-Zbuild-std needs it)"
        return 0
    fi
    note "tsan: locsvc service_parity + registry_swap + chaos, engine concurrent_engine"
    status=0
    RUSTFLAGS="$cpu -Z sanitizer=thread" \
        CARGO_TARGET_DIR=target/sanitize/tsan \
        cargo +nightly test -Z build-std --target "$triple" \
        -p locsvc --test service_parity --test registry_swap --test chaos \
        -p sca-locator --test concurrent_engine || status=$?
    ran tsan "$status"
}

run_asan() {
    if ! have_nightly; then
        skip asan "no nightly toolchain (rustup toolchain install nightly)"
        return 0
    fi
    if ! have_component rust-src; then
        skip asan "nightly lacks rust-src (-Zbuild-std needs it)"
        return 0
    fi
    note "asan: qsimd kernel tests + tinynn quant_props"
    status=0
    RUSTFLAGS="$cpu -Z sanitizer=address" \
        CARGO_TARGET_DIR=target/sanitize/asan \
        cargo +nightly test -Z build-std --target "$triple" \
        -p qsimd \
        -p tinynn --test quant_props || status=$?
    ran asan "$status"
}

run_miri() {
    if ! have_nightly; then
        skip miri "no nightly toolchain (rustup toolchain install nightly)"
        return 0
    fi
    if ! have_component miri; then
        skip miri "nightly lacks the miri component"
        return 0
    fi
    note "miri: qsimd scalar fallbacks and packing paths"
    status=0
    CARGO_TARGET_DIR=target/sanitize/miri \
        cargo +nightly miri test -p qsimd || status=$?
    ran miri "$status"
}

case "$phase" in
all)
    run_tsan
    run_asan
    run_miri
    ;;
tsan) run_tsan ;;
asan) run_asan ;;
miri) run_miri ;;
*)
    echo "usage: $0 [all|tsan|asan|miri]" >&2
    exit 2
    ;;
esac

if [ "$failures" -gt 0 ]; then
    echo "sanitize: FAILED ($failures failing phase(s))" >&2
    exit 1
fi
if [ "$skips" -gt 0 ]; then
    note "finished with $skips phase(s) SKIPPED — rerun with the missing components installed for full coverage"
else
    note "all phases passed"
fi
