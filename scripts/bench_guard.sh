#!/usr/bin/env sh
# Benchmark regression guard: compares every `windows_per_sec_*`,
# `speedup_*` and `*_latency_ms` metric of a freshly produced benchmark
# JSON against the committed baseline and fails when any of them regresses
# by more than the allowed percentage. Throughput and speedup metrics are
# higher-is-better; `*_latency_ms` metrics are lower-is-better (a fresh
# value *above* baseline by more than the budget fails). The speedup
# metrics are machine-normalised ratios (i8 vs f32, service vs batch, on
# the same run), so they guard the *relative* health of those paths even
# across runner generations.
#
# Usage: bench_guard.sh <baseline.json> <fresh.json> [max_regression_pct]
#
# The default budget is 15%: windows/sec is a per-window cost measure and so
# largely independent of the trace length, which lets the reduced-workload CI
# runs compare against the full-workload committed baselines; the budget
# absorbs runner-to-runner machine variance while still catching a real
# kernel or scheduling regression. The comparison is of absolute throughput,
# so the committed baselines must come from the same hardware class the
# guard runs on — when the CI runner generation (or the authoring machine)
# changes, re-commit the BENCH_*.json baselines from a known-good build
# rather than widening the budget. Metrics present in only one of the two
# files are reported but do not fail the guard (new benchmarks must be able
# to add metrics without breaking CI on the first run).
set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <baseline.json> <fresh.json> [max_regression_pct]" >&2
    exit 2
fi

baseline=$1
fresh=$2
budget=${3:-15}

for f in "$baseline" "$fresh"; do
    if [ ! -f "$f" ]; then
        echo "bench_guard: missing file $f" >&2
        exit 2
    fi
done

# Extracts `"key": value` pairs for keys matching windows_per_sec_*,
# speedup_* or *_latency_ms from a single-object JSON file (the flat format
# every BENCH_*.json here uses).
metrics() {
    tr -d ' ",' <"$1" \
        | awk -F: '/^((windows_per_sec|speedup)_[A-Za-z0-9_]*|[A-Za-z0-9_]*_latency_ms):/ { print $1, $2 }'
}

# Lower-is-better metrics (latencies) regress upward; everything else
# regresses downward.
is_lower_better() {
    case "$1" in
        *_latency_ms) return 0 ;;
        *) return 1 ;;
    esac
}

status=0
found=0
tmp_base=$(mktemp)
tmp_fresh=$(mktemp)
trap 'rm -f "$tmp_base" "$tmp_fresh"' EXIT
metrics "$baseline" >"$tmp_base"
metrics "$fresh" >"$tmp_fresh"

while read -r key base_value; do
    fresh_value=$(awk -v k="$key" '$1 == k { print $2 }' "$tmp_fresh")
    if [ -z "$fresh_value" ]; then
        echo "bench_guard: $key present only in baseline (skipped)"
        continue
    fi
    found=1
    if is_lower_better "$key"; then
        if awk -v b="$base_value" -v f="$fresh_value" -v p="$budget" \
            'BEGIN { exit !(f > b * (1 + p / 100)) }'; then
            echo "bench_guard: FAIL $key: $fresh_value > $base_value (allowed latency regression ${budget}%)"
            status=1
        else
            echo "bench_guard: ok   $key: $fresh_value vs baseline $base_value (lower is better)"
        fi
    elif awk -v b="$base_value" -v f="$fresh_value" -v p="$budget" \
        'BEGIN { exit !(f < b * (1 - p / 100)) }'; then
        echo "bench_guard: FAIL $key: $fresh_value < $base_value (allowed regression ${budget}%)"
        status=1
    else
        echo "bench_guard: ok   $key: $fresh_value vs baseline $base_value"
    fi
done <"$tmp_base"

while read -r key _; do
    if ! awk -v k="$key" '$1 == k { found = 1 } END { exit !found }' "$tmp_base"; then
        echo "bench_guard: $key present only in fresh run (skipped)"
    fi
done <"$tmp_fresh"

if [ "$found" -eq 0 ]; then
    echo "bench_guard: no windows_per_sec_*/speedup_*/*_latency_ms metrics found in $baseline" >&2
    exit 2
fi

exit "$status"
